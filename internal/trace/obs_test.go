package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// intCost is a cost model whose unit costs make every event boundary an
// exact small integer in virtual seconds: 1 flop = 1 s, wire = 1 s,
// send overhead = 1 s, 1 I/O byte = 1 s.
func intCost() sim.CostModel {
	return sim.CostModel{FlopRate: 1, Alpha: 1, SendOverhead: 1, BarrierAlpha: 1, IORate: 1}
}

// producerConsumer runs the canonical bottleneck scenario used by several
// tests below:
//
//	p0: span "on:prod:group[0]" { compute 10s; send -> p1 }   (send [10,11])
//	p1: span "on:cons:group[1]" { recv (waits [0,12]); compute 2s }
//
// Makespan 14 s; the critical path is p0's compute+send, one wire hop
// (1 s), then p1's compute.
func producerConsumer(t *testing.T) *Collector {
	t.Helper()
	c := &Collector{}
	m := machine.New(2, intCost())
	m.SetTracer(c)
	m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			p.BeginSpan("on:prod:group[0]")
			p.Compute(10)
			p.Send(1, 99, 4)
			p.EndSpan()
		} else {
			p.BeginSpan("on:cons:group[1]")
			p.Recv(0)
			p.Compute(2)
			p.EndSpan()
		}
	})
	return c
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTimelineReconstructsSpans(t *testing.T) {
	c := producerConsumer(t)
	tl := NewTimeline(c.Events())
	if len(tl.Spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(tl.Spans), tl.Spans)
	}
	for _, s := range tl.Spans {
		switch s.Label {
		case "on:prod:group[0]":
			if s.Proc != 0 || !approx(s.Start, 0) || !approx(s.End, 11) || s.Parent != -1 || s.Depth != 0 {
				t.Errorf("prod span = %+v", s)
			}
		case "on:cons:group[1]":
			if s.Proc != 1 || !approx(s.Start, 0) || !approx(s.End, 14) || s.Parent != -1 {
				t.Errorf("cons span = %+v", s)
			}
		default:
			t.Errorf("unexpected span %+v", s)
		}
	}
	// Every leaf event is owned by its processor's span.
	for i, e := range tl.Events {
		if e.Kind == machine.EvSpanBegin || e.Kind == machine.EvSpanEnd {
			continue
		}
		want := "on:prod:group[0]"
		if e.Proc == 1 {
			want = "on:cons:group[1]"
		}
		if got := tl.OwnerLabel(i); got != want {
			t.Errorf("event %d (%v on p%d) owner = %q, want %q", i, e.Kind, e.Proc, got, want)
		}
	}
}

func TestTimelineNestedOwnership(t *testing.T) {
	c := &Collector{}
	m := machine.New(1, intCost())
	m.SetTracer(c)
	m.Run(func(p *machine.Proc) {
		p.BeginSpan("outer")
		p.Compute(1)
		p.BeginSpan("inner")
		p.Compute(1)
		p.EndSpan()
		p.Compute(1)
		p.EndSpan()
	})
	tl := NewTimeline(c.Events())
	var got []string
	for i, e := range tl.Events {
		if e.Kind == machine.EvCompute {
			got = append(got, tl.OwnerLabel(i))
		}
	}
	want := []string{"outer", "inner", "outer"}
	if len(got) != len(want) {
		t.Fatalf("owners = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("compute %d owner = %q, want %q", i, got[i], want[i])
		}
	}
	if tl.Spans[1].Parent != 0 || tl.Spans[1].Depth != 1 {
		t.Errorf("inner span parent/depth = %d/%d, want 0/1", tl.Spans[1].Parent, tl.Spans[1].Depth)
	}
}

func TestSplitLabel(t *testing.T) {
	cases := []struct{ in, op, group string }{
		{"barrier:group[2 3]", "barrier", "group[2 3]"},
		{"on:G1:group[0 1]", "on:G1", "group[0 1]"},
		{"region:G1+G2:group[0 1 2 3]", "region:G1+G2", "group[0 1 2 3]"},
		{"plain", "plain", ""},
	}
	for _, tc := range cases {
		op, g := SplitLabel(tc.in)
		if op != tc.op || g != tc.group {
			t.Errorf("SplitLabel(%q) = (%q, %q), want (%q, %q)", tc.in, op, g, tc.op, tc.group)
		}
	}
}

func TestCriticalPathProducerBottleneck(t *testing.T) {
	cp := ComputeCriticalPath(producerConsumer(t).Events())
	if cp == nil {
		t.Fatal("nil critical path")
	}
	if !approx(cp.Makespan, 14) || !approx(cp.Start, 0) {
		t.Errorf("path window = [%g, %g], want [0, 14]", cp.Start, cp.Makespan)
	}
	if cp.Hops != 1 {
		t.Errorf("hops = %d, want 1", cp.Hops)
	}
	if len(cp.Procs) != 2 || cp.Procs[0] != 0 || cp.Procs[1] != 1 {
		t.Errorf("procs = %v, want [0 1]", cp.Procs)
	}
	kinds := map[string]float64{}
	for _, kt := range cp.ByKind {
		kinds[kt.Kind] = kt.Time
	}
	// compute 10 (p0) + 2 (p1), send overhead 1, wire 1; p1's 12 s wait is
	// NOT on the path — it is explained by the sender's timeline.
	if !approx(kinds["compute"], 12) || !approx(kinds["send"], 1) || !approx(kinds["network"], 1) {
		t.Errorf("by kind = %v, want compute 12, send 1, network 1", kinds)
	}
	if _, onPath := kinds["wait"]; onPath {
		t.Errorf("wait appears on path: %v", kinds)
	}
	spans := map[string]float64{}
	for _, st := range cp.BySpan {
		spans[st.Label] = st.Time
	}
	if !approx(spans["on:prod:group[0]"], 11) || !approx(spans["on:cons:group[1]"], 2) || !approx(spans["(network)"], 1) {
		t.Errorf("by span = %v", spans)
	}
	if cp.BySpan[0].Label != "on:prod:group[0]" {
		t.Errorf("dominant span = %q, want producer", cp.BySpan[0].Label)
	}
	if cp.Unattributed != 0 {
		t.Errorf("unattributed = %g, want 0", cp.Unattributed)
	}
	var sum float64
	for _, kt := range cp.ByKind {
		sum += kt.Time
	}
	if !approx(sum, cp.PathTime()) {
		t.Errorf("kind times sum to %g, path time %g", sum, cp.PathTime())
	}
}

func TestCriticalPathReportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	ComputeCriticalPath(producerConsumer(t).Events()).WriteReport(&a)
	ComputeCriticalPath(producerConsumer(t).Events()).WriteReport(&b)
	if a.String() != b.String() {
		t.Errorf("reports differ:\n%s\n---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "1 hops") || !strings.Contains(a.String(), "on:prod:group[0]") {
		t.Errorf("report missing expected content:\n%s", a.String())
	}
}

func TestComputeCriticalPathEmpty(t *testing.T) {
	if cp := ComputeCriticalPath(nil); cp != nil {
		t.Errorf("empty trace path = %+v, want nil", cp)
	}
}

func TestSpanGanttAndSummary(t *testing.T) {
	c := producerConsumer(t)
	var g bytes.Buffer
	SpanGantt(&g, c, 2, 28)
	out := g.String()
	for _, want := range []string{"p00", "p01", "a = on:cons:group[1]", "b = on:prod:group[0]"} {
		if !strings.Contains(out, want) {
			t.Errorf("span gantt missing %q:\n%s", want, out)
		}
	}
	// p1's span covers the whole makespan; p0's only the first 11/14.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "b") || strings.Contains(lines[1], "a") {
		t.Errorf("p0 row wrong: %q", lines[1])
	}
	if !strings.HasSuffix(strings.TrimSuffix(lines[2], "|"), "a") {
		t.Errorf("p1 row should end with its span letter: %q", lines[2])
	}

	var s bytes.Buffer
	SpanSummary(&s, c)
	sum := s.String()
	if !strings.Contains(sum, "on:cons:group[1]") || !strings.Contains(sum, "14.000000") {
		t.Errorf("span summary missing consumer span:\n%s", sum)
	}
	// Longest span sorts first.
	if strings.Index(sum, "on:cons") > strings.Index(sum, "on:prod") {
		t.Errorf("summary not sorted by total time:\n%s", sum)
	}
}

// chromeGolden is the exact export of the producerConsumer scenario. The
// integer cost model makes every timestamp exact, so this can be compared
// byte for byte.
const chromeGolden = `[{"name":"on:prod:group[0]","ph":"B","ts":0,"dur":0,"pid":0,"tid":0},` +
	`{"name":"compute","ph":"X","ts":0,"dur":10000000,"pid":0,"tid":0},` +
	`{"name":"send","ph":"X","ts":10000000,"dur":1000000,"pid":0,"tid":0,"args":{"bytes":4,"peer":1}},` +
	`{"name":"on:prod:group[0]","ph":"E","ts":11000000,"dur":0,"pid":0,"tid":0},` +
	`{"name":"on:cons:group[1]","ph":"B","ts":0,"dur":0,"pid":0,"tid":1},` +
	`{"name":"wait","ph":"X","ts":0,"dur":12000000,"pid":0,"tid":1,"args":{"bytes":4,"peer":0}},` +
	`{"name":"recv","ph":"X","ts":12000000,"dur":0,"pid":0,"tid":1,"args":{"bytes":4,"peer":0}},` +
	`{"name":"compute","ph":"X","ts":12000000,"dur":2000000,"pid":0,"tid":1},` +
	`{"name":"on:cons:group[1]","ph":"E","ts":14000000,"dur":0,"pid":0,"tid":1}]` + "\n"

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, producerConsumer(t)); err != nil {
		t.Fatal(err)
	}
	if buf.String() != chromeGolden {
		t.Errorf("chrome trace drifted from golden:\n got: %s\nwant: %s", buf.String(), chromeGolden)
	}
}

// TestChromeTraceSpansAndArgs locks the enriched Chrome export: span markers
// become B/E duration events and communication leaves carry peer/bytes args.
func TestChromeTraceSpansAndArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, producerConsumer(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"on:prod:group[0]","ph":"B"`,
		`"name":"on:prod:group[0]","ph":"E"`,
		`"name":"on:cons:group[1]","ph":"B"`,
		`"args":{"bytes":4,"peer":1}`, // send on p0
		`"args":{"bytes":4,"peer":0}`, // wait/recv on p1
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s\n%s", want, out)
		}
	}
}
