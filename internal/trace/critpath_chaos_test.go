package trace

// Regression coverage for critical-path analysis on faulted runs: the
// injected EvFault/EvTimeout/EvRetry markers are zero-duration, so for a
// long time they silently fell through the duration gate — a chaotic run's
// path showed the time but not the cause. The markers must now be counted,
// attributed to the right span, and surfaced in the report.

import (
	"bytes"
	"strings"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func chaosTrace(t *testing.T, seed uint64) *CriticalPath {
	t.Helper()
	prof, err := fault.ProfileByName("flaky")
	if err != nil {
		t.Fatal(err)
	}
	col := &Collector{}
	m := machine.New(16, sim.Paragon())
	m.SetTracer(col)
	m.SetFaults(fault.New(seed, prof))
	ffthist.Run(m, ffthist.Config{N: 32, Sets: 8, Bins: 16},
		ffthist.Mapping{Modules: 1, Stages: []int{8, 4, 4}})
	return ComputeCriticalPath(col.Events())
}

func TestCriticalPathAttributesFaultMarkers(t *testing.T) {
	// Fault markers land on the critical path only when the injected
	// perturbation is what binds the makespan; scan a few seeds for a run
	// where that happens (deterministically — same seed, same trace).
	var cp *CriticalPath
	for seed := uint64(1); seed <= 16; seed++ {
		c := chaosTrace(t, seed)
		if c.Faults+c.Timeouts+c.Retries > 0 {
			cp = c
			break
		}
	}
	if cp == nil {
		t.Fatal("no seed in 1..16 put a fault marker on the critical path — chaos plan exercises nothing")
	}

	// Per-span counts must decompose the totals exactly.
	var f, to, r int
	for _, st := range cp.BySpan {
		f += st.Faults
		to += st.Timeouts
		r += st.Retries
	}
	if f != cp.Faults || to != cp.Timeouts || r != cp.Retries {
		t.Errorf("per-span fault counts (%d,%d,%d) do not decompose totals (%d,%d,%d)",
			f, to, r, cp.Faults, cp.Timeouts, cp.Retries)
	}

	var buf bytes.Buffer
	cp.WriteReport(&buf)
	out := buf.String()
	if !strings.Contains(out, "faults on path:") {
		t.Errorf("chaotic report missing fault summary line:\n%s", out)
	}
	if !strings.Contains(out, "retries]") && !strings.Contains(out, "timeouts,") {
		t.Errorf("chaotic report missing per-span fault annotation:\n%s", out)
	}
}

// TestCriticalPathHealthyReportUnchanged: on a fault-free run the counters
// are zero and the report contains no fault lines — the format is
// byte-compatible with pre-counter reports.
func TestCriticalPathHealthyReportUnchanged(t *testing.T) {
	col := &Collector{}
	m := machine.New(16, sim.Paragon())
	m.SetTracer(col)
	ffthist.Run(m, ffthist.Config{N: 32, Sets: 8, Bins: 16},
		ffthist.Mapping{Modules: 1, Stages: []int{8, 4, 4}})
	cp := ComputeCriticalPath(col.Events())
	if cp.Faults != 0 || cp.Timeouts != 0 || cp.Retries != 0 {
		t.Fatalf("healthy run counted fault markers: %d/%d/%d", cp.Faults, cp.Timeouts, cp.Retries)
	}
	var buf bytes.Buffer
	cp.WriteReport(&buf)
	if strings.Contains(buf.String(), "faults on path:") || strings.Contains(buf.String(), "retries]") {
		t.Errorf("healthy report grew fault annotations:\n%s", buf.String())
	}
}
