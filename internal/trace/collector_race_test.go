package trace

import (
	"sync"
	"testing"

	"fxpar/internal/machine"
)

// TestCollectorCacheNeverStale: the sorted Events() view must reflect every
// Record that returned before the call — a strictly alternating
// record/read sequence is the cheapest way for a stale cache to show.
func TestCollectorCacheNeverStale(t *testing.T) {
	var c Collector
	for i := 0; i < 200; i++ {
		c.Record(machine.Event{Proc: i % 5, Kind: machine.EvCompute,
			Seq: int64(i), Start: float64(i), End: float64(i)})
		if got := len(c.Events()); got != i+1 {
			t.Fatalf("after %d records Events() has %d events", i+1, got)
		}
	}
}

// TestCollectorRecordEventsInterleaved hammers Record from many goroutines
// while another goroutine repeatedly calls Events(). Under -race this pins
// the collector's locking discipline; the assertions pin that every
// mid-run view is sorted and that the final view holds every event exactly
// once (the cached view must be invalidated by concurrent records).
func TestCollectorRecordEventsInterleaved(t *testing.T) {
	var c Collector
	const writers = 8
	const perWriter = 400

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			evs := c.Events()
			for i := 1; i < len(evs); i++ {
				prev, cur := evs[i-1], evs[i]
				if cur.Proc < prev.Proc || (cur.Proc == prev.Proc && cur.Seq < prev.Seq) {
					t.Errorf("Events() view not sorted at index %d: %+v after %+v", i, cur, prev)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 1; i <= perWriter; i++ {
				c.Record(machine.Event{Proc: w, Kind: machine.EvCompute,
					Seq: int64(i), Start: float64(i), End: float64(i)})
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	evs := c.Events()
	if len(evs) != writers*perWriter {
		t.Fatalf("final Events() has %d events, want %d", len(evs), writers*perWriter)
	}
	next := make([]int64, writers) // per-writer expected next Seq - 1
	for _, e := range evs {
		if e.Seq != next[e.Proc]+1 {
			t.Fatalf("proc %d: seq %d after %d — events lost or duplicated", e.Proc, e.Seq, next[e.Proc])
		}
		next[e.Proc] = e.Seq
	}
}
