// Package trace collects and renders virtual-time execution traces of
// simulated runs: what every processor was doing (computing, sending,
// waiting, doing I/O) at each moment. The ASCII Gantt rendering makes
// pipelined task parallelism visible — the staggered compute bands of a
// data parallel pipeline look exactly like the module diagrams of Figure 5.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fxpar/internal/machine"
)

// collectorShards is the number of independent append buffers a Collector
// stripes events over (indexed by event processor id). One global mutex was
// contended by every processor goroutine on large machines; striping makes
// recording scale with the host while keeping the zero value ready to use.
const collectorShards = 64

// collectorShard is one stripe of a Collector's event buffer.
type collectorShard struct {
	mu     sync.Mutex
	events []machine.Event
}

// Collector accumulates events from a traced run. It is safe for concurrent
// use by processor goroutines. The zero value is ready to use.
type Collector struct {
	shards [collectorShards]collectorShard
	// dirty marks that events were recorded since the last Events() call;
	// the sorted view is cached until then, because one profiling pass
	// (metrics, critical path, Gantt) reads it several times.
	dirty   atomic.Bool
	cacheMu sync.Mutex
	cache   []machine.Event
}

var _ machine.Tracer = (*Collector)(nil)

// Record implements machine.Tracer.
func (c *Collector) Record(e machine.Event) {
	sh := &c.shards[shardIndex(e.Proc)]
	sh.mu.Lock()
	sh.events = append(sh.events, e)
	sh.mu.Unlock()
	c.dirty.Store(true)
}

// shardIndex maps a processor id (possibly negative in hand-built fixtures)
// to its stripe.
func shardIndex(proc int) int {
	if proc < 0 {
		proc = -proc
	}
	return proc % collectorShards
}

// SortEvents orders events in place by (processor, sequence number) —
// per-processor program order, which is deterministic regardless of
// recording interleaving. Events recorded without sequence numbers
// (hand-built test fixtures) fall back to (start, end) order. It is the
// canonical order of Events() and of every post-hoc analysis.
func SortEvents(evs []machine.Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Proc != evs[j].Proc {
			return evs[i].Proc < evs[j].Proc
		}
		if evs[i].Seq != evs[j].Seq {
			return evs[i].Seq < evs[j].Seq
		}
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].End < evs[j].End
	})
}

// Events returns the recorded events sorted by (processor, sequence number):
// per-processor program order, deterministic regardless of recording
// interleaving. The sorted view is cached until the next Record, so the
// repeated calls of one profiling pass (metrics, critical path, Gantt) sort
// only once. Callers must treat the returned slice as read-only; it is
// shared between calls.
func (c *Collector) Events() []machine.Event {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	if c.cache != nil && !c.dirty.Load() {
		return c.cache
	}
	c.dirty.Store(false)
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.events)
		sh.mu.Unlock()
	}
	out := make([]machine.Event, 0, n)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out = append(out, sh.events...)
		sh.mu.Unlock()
	}
	SortEvents(out)
	c.cache = out
	return out
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.events)
		sh.mu.Unlock()
	}
	return n
}

// Span returns the [min start, max end] of all events (0,0 when empty). The
// extrema are computed in one pass over the shards — no copy, no sort.
func (c *Collector) Span() (start, end float64) {
	first := true
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.events {
			if first {
				start, end = e.Start, e.End
				first = false
				continue
			}
			if e.Start < start {
				start = e.Start
			}
			if e.End > end {
				end = e.End
			}
		}
		sh.mu.Unlock()
	}
	if first {
		return 0, 0
	}
	return start, end
}

// BusyByKind sums event durations per kind per processor.
func (c *Collector) BusyByKind(procs int) map[machine.EventKind][]float64 {
	out := map[machine.EventKind][]float64{}
	for _, e := range c.Events() {
		if e.Proc >= procs {
			continue
		}
		if out[e.Kind] == nil {
			out[e.Kind] = make([]float64, procs)
		}
		out[e.Kind][e.Proc] += e.End - e.Start
	}
	return out
}

// glyph maps an event kind to its Gantt character.
func glyph(k machine.EventKind) byte {
	switch k {
	case machine.EvCompute:
		return '#'
	case machine.EvSend:
		return 's'
	case machine.EvWait:
		return '.'
	case machine.EvIO:
		return 'I'
	case machine.EvRecv:
		return 'r'
	case machine.EvTimeout:
		return 't'
	case machine.EvFault:
		return 'F'
	case machine.EvRetry:
		return 'R'
	}
	return '?'
}

// Gantt renders the trace as one row per processor over a fixed-width time
// axis. Within a time bucket the kind occupying the most time wins; idle
// (untracked) time renders as a space.
func Gantt(w io.Writer, c *Collector, procs int, width int) {
	if width < 10 {
		width = 10
	}
	start, end := c.Span()
	if end <= start {
		fmt.Fprintln(w, "trace: no events")
		return
	}
	scale := float64(width) / (end - start)
	// occupancy[proc][bucket][kind] = time
	rows := make([][]map[machine.EventKind]float64, procs)
	for i := range rows {
		rows[i] = make([]map[machine.EventKind]float64, width)
	}
	for _, e := range c.Events() {
		if e.Proc >= procs {
			continue
		}
		b0 := int((e.Start - start) * scale)
		b1 := int((e.End - start) * scale)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			lo := start + float64(b)/scale
			hi := start + float64(b+1)/scale
			olo, ohi := maxF(lo, e.Start), minF(hi, e.End)
			if ohi <= olo {
				continue
			}
			if rows[e.Proc][b] == nil {
				rows[e.Proc][b] = map[machine.EventKind]float64{}
			}
			rows[e.Proc][b][e.Kind] += ohi - olo
		}
	}
	fmt.Fprintf(w, "time %.6fs .. %.6fs   (# compute, s send, . wait, I io, space idle)\n", start, end)
	for pr := 0; pr < procs; pr++ {
		var sb strings.Builder
		for b := 0; b < width; b++ {
			occ := rows[pr][b]
			if len(occ) == 0 {
				sb.WriteByte(' ')
				continue
			}
			var bestK machine.EventKind
			bestT := -1.0
			for k, t := range occ {
				if t > bestT || (t == bestT && k < bestK) {
					bestK, bestT = k, t
				}
			}
			sb.WriteByte(glyph(bestK))
		}
		fmt.Fprintf(w, "p%02d |%s|\n", pr, sb.String())
	}
}

// Utilization prints per-processor busy/wait fractions.
func Utilization(w io.Writer, c *Collector, procs int) {
	start, end := c.Span()
	total := end - start
	if total <= 0 {
		fmt.Fprintln(w, "trace: no events")
		return
	}
	byKind := c.BusyByKind(procs)
	fmt.Fprintf(w, "%5s %9s %9s %9s %9s\n", "proc", "compute", "send", "wait", "io")
	for pr := 0; pr < procs; pr++ {
		row := make([]float64, 4)
		for k, series := range byKind {
			if int(k) < len(row) {
				row[int(k)] = series[pr] / total
			}
		}
		fmt.Fprintf(w, "p%04d %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			pr, row[0]*100, row[1]*100, row[2]*100, row[3]*100)
	}
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto): complete events ("ph":"X") for leaf
// intervals and duration events ("ph":"B"/"E") for named spans, with
// microsecond timestamps.
type chromeEvent struct {
	Name  string           `json:"name"`
	Ph    string           `json:"ph"`
	Scope string           `json:"s,omitempty"` // instant-event scope ("t")
	Ts    float64          `json:"ts"`          // microseconds
	Dur   float64          `json:"dur"`         // microseconds (0 for B/E markers)
	Pid   int              `json:"pid"`
	Tid   int              `json:"tid"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// WriteChromeTrace exports the trace in the Chrome trace-event JSON format,
// loadable in chrome://tracing or Perfetto: one timeline row per simulated
// processor, one complete event per recorded interval, and nested named
// span tracks ("B"/"E" pairs labelled with subgroup identity) for fx task
// regions, ON blocks and comm collectives. Send/recv/wait/io events carry
// their peer and byte count as args. Timestamps are virtual microseconds.
func WriteChromeTrace(w io.Writer, c *Collector) error {
	evs := c.Events()
	out := make([]chromeEvent, 0, len(evs))
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Ph:   "X",
			Ts:   e.Start * 1e6,
			Dur:  (e.End - e.Start) * 1e6,
			Pid:  0,
			Tid:  e.Proc,
		}
		switch e.Kind {
		case machine.EvSpanBegin:
			ce.Name, ce.Ph, ce.Dur = e.Label, "B", 0
		case machine.EvSpanEnd:
			ce.Name, ce.Ph, ce.Dur = e.Label, "E", 0
		case machine.EvSend, machine.EvRecv, machine.EvWait, machine.EvTimeout:
			ce.Args = map[string]int64{"peer": int64(e.Peer), "bytes": int64(e.Bytes)}
		case machine.EvIO:
			if e.Bytes != 0 {
				ce.Args = map[string]int64{"bytes": int64(e.Bytes)}
			}
		case machine.EvFault:
			// Zero-duration chaos markers render as thread-scoped instants
			// so Perfetto draws them as flags on the processor's row.
			ce.Name, ce.Ph, ce.Scope = "fault:"+e.Label, "i", "t"
			ce.Args = map[string]int64{"peer": int64(e.Peer), "bytes": int64(e.Bytes)}
		case machine.EvRetry:
			ce.Name, ce.Ph, ce.Scope = "retry", "i", "t"
			ce.Args = map[string]int64{"peer": int64(e.Peer)}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
