package trace

// Telemetry self-accounting: every sink can be wrapped in a meter that
// attributes its own host cost, and an OverheadBudget aggregates the meters
// into one report — "observability cost X% of the wall clock, N bytes
// allocated" — surfaced by fxprof, streamed by the campaign monitor, and
// gated in CI by tools/checkobs. The meter times one Record in every
// meterSampleEvery on each shard (a time.Now pair costs tens of
// nanoseconds; paying it on every event would itself violate the budget)
// and scales the sampled time by the full event count, so the estimate
// converges while the metering overhead stays near one atomic add per
// event.

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fxpar/internal/machine"
)

// meterSampleEvery is the per-shard timing sample period (a power of two so
// the test is a mask).
const meterSampleEvery = 64

// meterClampNS caps a single timed sample. The clock pair can straddle an
// OS descheduling or a GC pause thousands of times longer than the Record
// call it brackets, and with only a few thousand timed samples per run one
// such outlier would dominate the mean and report a wildly inflated
// estimate. Genuine sink work (a map rehash, a slice growth) stays orders
// of magnitude under this ceiling.
const meterClampNS = 50_000

// meterCell is one shard's counters, padded to a cache line so neighboring
// shards' meters don't false-share.
type meterCell struct {
	events  atomic.Int64
	timedNS atomic.Int64
	timed   atomic.Int64
	_       [5]int64
}

// MeteredSink wraps a Tracer and accounts the host time spent inside its
// Record calls. Sharded like the Collector: each processor's counter cell
// is effectively private to its goroutine, so the meter adds one
// uncontended atomic add per event (plus a clock pair on every
// meterSampleEvery-th call).
type MeteredSink struct {
	name  string
	inner machine.Tracer
	cells [collectorShards]meterCell
}

var _ machine.Tracer = (*MeteredSink)(nil)

// Record implements machine.Tracer.
func (ms *MeteredSink) Record(e machine.Event) {
	c := &ms.cells[shardIndex(e.Proc)]
	if c.events.Add(1)&(meterSampleEvery-1) != 1 {
		ms.inner.Record(e)
		return
	}
	t0 := time.Now()
	ms.inner.Record(e)
	ns := time.Since(t0).Nanoseconds()
	if ns > meterClampNS {
		ns = meterClampNS
	}
	c.timedNS.Add(ns)
	c.timed.Add(1)
}

// SinkCost is one metered sink's accounting.
type SinkCost struct {
	Name string `json:"name"`
	// Events is the number of Record calls the sink saw.
	Events int64 `json:"events"`
	// EstNS estimates the host nanoseconds spent inside the sink's Record:
	// mean sampled call time times the event count.
	EstNS int64 `json:"estNS"`
	// TimedCalls is how many calls contributed to the estimate.
	TimedCalls int64 `json:"timedCalls"`
}

// cost sums the shards into a SinkCost.
func (ms *MeteredSink) cost() SinkCost {
	out := SinkCost{Name: ms.name}
	var ns int64
	for i := range ms.cells {
		out.Events += ms.cells[i].events.Load()
		ns += ms.cells[i].timedNS.Load()
		out.TimedCalls += ms.cells[i].timed.Load()
	}
	if out.TimedCalls > 0 {
		out.EstNS = int64(float64(ns) / float64(out.TimedCalls) * float64(out.Events))
	}
	return out
}

// meteredBlockSink additionally forwards RecordBlocked so wrapping a
// flight recorder does not hide its BlockTracer capability from Tee.
type meteredBlockSink struct {
	MeteredSink
	bt machine.BlockTracer
}

func (ms *meteredBlockSink) RecordBlocked(proc, src int, now float64) {
	ms.bt.RecordBlocked(proc, src, now)
}

// OverheadBudget aggregates metered sinks plus run-wide host accounting
// (wall time, allocation deltas) into one observability-cost report.
// Typical use: wrap every sink with Meter before building the Tee, call
// Start just before Machine.Run and Finish right after, then Report.
type OverheadBudget struct {
	mu      sync.Mutex
	sinks   []*MeteredSink
	sampler *Sampler

	started     time.Time
	running     bool
	wallNS      int64
	allocBytes  uint64
	mallocs     uint64
	startAllocs uint64
	startMall   uint64
}

// NewOverheadBudget returns an empty budget.
func NewOverheadBudget() *OverheadBudget { return &OverheadBudget{} }

// Meter wraps a sink so its Record cost is accounted under name. A nil sink
// returns nil, so optional sinks can be threaded without checks. If the
// sink also implements machine.BlockTracer the wrapper preserves that.
func (b *OverheadBudget) Meter(name string, t machine.Tracer) machine.Tracer {
	if t == nil || b == nil {
		return t
	}
	if bt, ok := t.(machine.BlockTracer); ok {
		ms := &meteredBlockSink{MeteredSink: MeteredSink{name: name, inner: t}, bt: bt}
		b.mu.Lock()
		b.sinks = append(b.sinks, &ms.MeteredSink)
		b.mu.Unlock()
		return ms
	}
	ms := &MeteredSink{name: name, inner: t}
	b.mu.Lock()
	b.sinks = append(b.sinks, ms)
	b.mu.Unlock()
	return ms
}

// SetSampler attaches the run's sampler so reports carry its rates and
// kept/dropped counts.
func (b *OverheadBudget) SetSampler(s *Sampler) {
	b.mu.Lock()
	b.sampler = s
	b.mu.Unlock()
}

// Start marks the beginning of the accounted run.
func (b *OverheadBudget) Start() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.mu.Lock()
	b.started = time.Now()
	b.running = true
	b.startAllocs = ms.TotalAlloc
	b.startMall = ms.Mallocs
	b.mu.Unlock()
}

// Finish freezes the wall clock and allocation deltas.
func (b *OverheadBudget) Finish() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.mu.Lock()
	if b.running {
		b.wallNS = time.Since(b.started).Nanoseconds()
		b.allocBytes = ms.TotalAlloc - b.startAllocs
		b.mallocs = ms.Mallocs - b.startMall
		b.running = false
	}
	b.mu.Unlock()
}

// BudgetReport is a point-in-time view of an OverheadBudget.
type BudgetReport struct {
	// WallNS is the accounted run's host wall time (live value if the run
	// is still going).
	WallNS int64 `json:"wallNS"`
	// AllocBytes/Mallocs are the process-wide allocation deltas between
	// Start and Finish (0 while running; reading MemStats mid-run would
	// stop the world).
	AllocBytes uint64 `json:"allocBytes"`
	Mallocs    uint64 `json:"mallocs"`
	// Sinks lists each metered sink's cost, in Meter order.
	Sinks []SinkCost `json:"sinks"`
	// TotalEstNS sums the sink estimates; SinkSharePct is that as a
	// percentage of WallNS.
	TotalEstNS   int64   `json:"totalEstNS"`
	SinkSharePct float64 `json:"sinkSharePct"`
	// Sample is the sampler's snapshot, when one is attached.
	Sample *SampleSnapshot `json:"sample,omitempty"`
}

// Report assembles the current accounting. Safe to call mid-run (the
// campaign monitor polls it); wall time is then the live elapsed time.
func (b *OverheadBudget) Report() BudgetReport {
	b.mu.Lock()
	r := BudgetReport{WallNS: b.wallNS, AllocBytes: b.allocBytes, Mallocs: b.mallocs}
	if b.running {
		r.WallNS = time.Since(b.started).Nanoseconds()
	}
	sinks := append([]*MeteredSink(nil), b.sinks...)
	sampler := b.sampler
	b.mu.Unlock()
	for _, ms := range sinks {
		c := ms.cost()
		r.Sinks = append(r.Sinks, c)
		r.TotalEstNS += c.EstNS
	}
	if r.WallNS > 0 {
		r.SinkSharePct = float64(r.TotalEstNS) / float64(r.WallNS) * 100
	}
	if sampler != nil {
		snap := sampler.Snapshot()
		r.Sample = &snap
	}
	return r
}

// Line renders the compact single-line form used by the campaign monitor:
// sink share, per-sink breakdown, sample rates, dropped count.
func (r BudgetReport) Line() string {
	parts := make([]string, 0, len(r.Sinks))
	for _, s := range r.Sinks {
		pct := 0.0
		if r.WallNS > 0 {
			pct = float64(s.EstNS) / float64(r.WallNS) * 100
		}
		parts = append(parts, fmt.Sprintf("%s %.1f%%", s.Name, pct))
	}
	line := fmt.Sprintf("sinks %.1f%% host", r.SinkSharePct)
	if len(parts) > 0 {
		line += " (" + strings.Join(parts, ", ") + ")"
	}
	if r.Sample != nil {
		line += "  sampled " + r.Sample.RatesString()
		if r.Sample.Dropped > 0 {
			line += fmt.Sprintf("  dropped %d", r.Sample.Dropped)
		}
	}
	return line
}

// WriteText renders the full budget report.
func (r BudgetReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "wall %.3fs  telemetry est %.3fs (%.1f%%)",
		float64(r.WallNS)/1e9, float64(r.TotalEstNS)/1e9, r.SinkSharePct)
	if r.Mallocs > 0 {
		fmt.Fprintf(w, "  allocs %d (%.1f MB)", r.Mallocs, float64(r.AllocBytes)/1e6)
	}
	fmt.Fprintln(w)
	for _, s := range r.Sinks {
		pct := 0.0
		if r.WallNS > 0 {
			pct = float64(s.EstNS) / float64(r.WallNS) * 100
		}
		fmt.Fprintf(w, "  %-12s %12d events  est %9.3fms  %5.1f%%\n",
			s.Name, s.Events, float64(s.EstNS)/1e6, pct)
	}
	if r.Sample != nil && r.Sample.Sampled() {
		// One line, not the full per-kind table — consumers that want the
		// breakdown print SampleSnapshot.WriteText themselves.
		fmt.Fprintf(w, "  sampled: %s  kept %d  dropped %d\n",
			r.Sample.RatesString(), r.Sample.Kept, r.Sample.Dropped)
	}
}
