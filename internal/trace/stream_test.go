package trace

import (
	"bytes"
	"strings"
	"testing"

	"fxpar/internal/machine"
)

// streamedProducerConsumer runs the producerConsumer scenario with a
// Collector and the streaming sinks attached side by side through Tee.
func streamedProducerConsumer(t *testing.T) (*Collector, *UtilSink, *CommMatrix) {
	t.Helper()
	col := &Collector{}
	util := NewUtilSink(2)
	comm := NewCommMatrix(2)
	m := machine.New(2, intCost())
	m.SetTracer(Tee(col, util, comm))
	m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			p.BeginSpan("on:prod:group[0]")
			p.Compute(10)
			p.Send(1, 99, 4)
			p.EndSpan()
		} else {
			p.BeginSpan("on:cons:group[1]")
			p.Recv(0)
			p.Compute(2)
			p.EndSpan()
		}
	})
	return col, util, comm
}

// TestUtilSinkMatchesBusyByKind: the streamed utilization must equal the
// post-hoc BusyByKind fold of the full event log, and the streamed extent
// must equal Collector.Span().
func TestUtilSinkMatchesBusyByKind(t *testing.T) {
	col, util, _ := streamedProducerConsumer(t)
	snap := util.Snapshot()
	if snap.Dropped != 0 {
		t.Fatalf("UtilSink dropped %d events", snap.Dropped)
	}
	byKind := col.BusyByKind(2)
	pick := func(k machine.EventKind, pr int) float64 {
		if byKind[k] == nil {
			return 0
		}
		return byKind[k][pr]
	}
	for pr := 0; pr < 2; pr++ {
		u := snap.PerProc[pr]
		if u.Compute != pick(machine.EvCompute, pr) ||
			u.Send != pick(machine.EvSend, pr) ||
			u.Wait != pick(machine.EvWait, pr) ||
			u.IO != pick(machine.EvIO, pr) {
			t.Errorf("p%d: streamed %+v != post-hoc compute=%g send=%g wait=%g io=%g",
				pr, u, pick(machine.EvCompute, pr), pick(machine.EvSend, pr),
				pick(machine.EvWait, pr), pick(machine.EvIO, pr))
		}
	}
	start, end := col.Span()
	if snap.Start != start || snap.End != end {
		t.Errorf("streamed extent [%g,%g] != collector span [%g,%g]", snap.Start, snap.End, start, end)
	}

	// The rendered table must match Utilization's byte for byte.
	var live, posthoc bytes.Buffer
	snap.WriteText(&live)
	Utilization(&posthoc, col, 2)
	if live.String() != posthoc.String() {
		t.Errorf("streamed utilization table differs:\n--- streaming\n%s--- post-hoc\n%s", live.String(), posthoc.String())
	}
}

// TestCommMatrixMatchesPostHoc: the streamed (src,dst) matrix must equal the
// reference fold over the full event log.
func TestCommMatrixMatchesPostHoc(t *testing.T) {
	col, _, comm := streamedProducerConsumer(t)
	live := comm.Snapshot()
	ref := CommFromEvents(col.Events())
	if len(live) != len(ref) {
		t.Fatalf("edge count: streaming %d != post-hoc %d", len(live), len(ref))
	}
	for i := range live {
		if live[i] != ref[i] {
			t.Errorf("edge %d: streaming %+v != post-hoc %+v", i, live[i], ref[i])
		}
	}
	// The scenario has exactly one communicating pair: p0 -> p1, one 4-byte
	// message sent and consumed.
	want := CommEdge{Src: 0, Dst: 1, MsgsSent: 1, BytesSent: 4, MsgsRecvd: 1, BytesRecvd: 4}
	if len(live) != 1 || live[0] != want {
		t.Errorf("matrix = %+v, want [%+v]", live, want)
	}
	var buf bytes.Buffer
	WriteCommMatrix(&buf, live)
	if !strings.Contains(buf.String(), "p0000 p0001") {
		t.Errorf("rendered matrix:\n%s", buf.String())
	}
}

// TestCollectorEventsCached: Events() must return the same cached slice until
// the next Record invalidates it.
func TestCollectorEventsCached(t *testing.T) {
	c := &Collector{}
	c.Record(machine.Event{Proc: 0, Kind: machine.EvCompute, Start: 0, End: 1, Seq: 1})
	ev1 := c.Events()
	ev2 := c.Events()
	if len(ev1) != 1 || len(ev2) != 1 {
		t.Fatalf("lens %d %d", len(ev1), len(ev2))
	}
	if &ev1[0] != &ev2[0] {
		t.Error("Events() rebuilt the view with no intervening Record")
	}
	c.Record(machine.Event{Proc: 1, Kind: machine.EvCompute, Start: 1, End: 2, Seq: 1})
	ev3 := c.Events()
	if len(ev3) != 2 {
		t.Errorf("after Record, Events() len = %d, want 2", len(ev3))
	}
}

// TestTeeFanOut: every child sees every event; nil children are skipped; a
// single-child tee unwraps to the child itself.
func TestTeeFanOut(t *testing.T) {
	a := &Collector{}
	b := &Collector{}
	tr := Tee(nil, a, nil, b)
	tr.Record(machine.Event{Proc: 0, Kind: machine.EvCompute, Start: 0, End: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out: a=%d b=%d, want 1 and 1", a.Len(), b.Len())
	}
	if got := Tee(a); got != machine.Tracer(a) {
		t.Error("single-child Tee should unwrap")
	}
	if got := Tee(); got != nil {
		t.Error("empty Tee should be nil")
	}
	// A tee advertises BlockTracer only when a child implements it.
	if _, ok := Tee(a, b).(machine.BlockTracer); ok {
		t.Error("tee of plain collectors must not advertise BlockTracer")
	}
	fr := NewFlightRecorder(2, 4)
	bt, ok := Tee(a, fr).(machine.BlockTracer)
	if !ok {
		t.Fatal("tee with a FlightRecorder child must advertise BlockTracer")
	}
	bt.RecordBlocked(1, 0, 3.5)
	if peer, since, blocked := fr.OpenWait(1); !blocked || peer != 0 || since != 3.5 {
		t.Errorf("OpenWait = (%d, %g, %v), want (0, 3.5, true)", peer, since, blocked)
	}
}
