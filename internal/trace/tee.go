package trace

// Tee fans one machine tracer stream out to several consumers, so a run can
// feed the full Collector, the streaming sinks and a flight recorder at the
// same time from a single machine.SetTracer call.

import "fxpar/internal/machine"

// tee forwards every event to each of its children.
type tee struct {
	tracers []machine.Tracer
}

func (t *tee) Record(e machine.Event) {
	for _, tr := range t.tracers {
		tr.Record(e)
	}
}

// blockingTee additionally forwards blocked-receive callbacks to the
// children that understand them. It is a separate type so that a tee with
// no BlockTracer children does not satisfy machine.BlockTracer — the
// machine then skips the pre-block bookkeeping entirely.
type blockingTee struct {
	tee
	blocked []machine.BlockTracer
}

func (t *blockingTee) RecordBlocked(proc, src int, now float64) {
	for _, bt := range t.blocked {
		bt.RecordBlocked(proc, src, now)
	}
}

// Tee returns a tracer that forwards every event to all of the given
// tracers, in argument order. Nil entries are skipped; a single non-nil
// tracer is returned unwrapped; with none, Tee returns nil (tracing off).
// If any child implements machine.BlockTracer, the returned tracer does too
// and forwards blocked-receive callbacks to those children.
func Tee(tracers ...machine.Tracer) machine.Tracer {
	kept := make([]machine.Tracer, 0, len(tracers))
	var blocked []machine.BlockTracer
	for _, tr := range tracers {
		if tr == nil {
			continue
		}
		kept = append(kept, tr)
		if bt, ok := tr.(machine.BlockTracer); ok {
			blocked = append(blocked, bt)
		}
	}
	switch {
	case len(kept) == 0:
		return nil
	case len(kept) == 1:
		return kept[0]
	case len(blocked) > 0:
		return &blockingTee{tee: tee{tracers: kept}, blocked: blocked}
	default:
		return &tee{tracers: kept}
	}
}
