package trace

// Deterministic event sampling: the scale tier's answer to O(events) sink
// work. A Sampler implements machine.EventSampler with the same
// counter-based splitmix64 design as internal/fault's chaos plans — every
// decision is a pure hash of (seed, kind, proc, seq), with no shared
// generator state — so the set of kept events is byte-identical across
// execution engines, sweep -j levels, and hosts, and a sampled trace is as
// reproducible as an unsampled one.
//
// Rates are per event kind. Structural and diagnostic events — span
// boundaries (which metrics attribution and critical-path analysis walk),
// fault/timeout/retry markers (which are rare and are the whole point of a
// chaotic run) — are always kept regardless of the configured rate; only
// the bulk kinds (compute, send, wait, io, recv) are thinned. The sampler
// counts kept and dropped events per kind, so consumers can report scaled
// estimates (count / rate) with explicit "sampled" markers.

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync/atomic"

	"fxpar/internal/machine"
)

// numEventKinds covers machine.EvCompute..machine.EvRetry.
const numEventKinds = int(machine.EvRetry) + 1

// sampleStream decorrelates sampling decisions from every other consumer of
// the same seed (fault plans use small stream constants; this one is far
// away in the stream space).
const sampleStream uint64 = 0x5a17

// mix64 is the splitmix64 finalizer (the same chain internal/fault uses;
// re-declared here because fault sits above machine and trace must not
// import it).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// alwaysKeep reports whether a kind is exempt from sampling: span
// boundaries, fault markers, timeouts, and retries are kept at any rate.
func alwaysKeep(k machine.EventKind) bool {
	switch k {
	case machine.EvSpanBegin, machine.EvSpanEnd, machine.EvFault,
		machine.EvTimeout, machine.EvRetry:
		return true
	}
	return false
}

// SampleConfig configures a Sampler: a seed and one keep-rate per event
// kind in [0, 1]. Rates of always-keep kinds are forced to 1.
type SampleConfig struct {
	Seed  uint64
	Rates [numEventKinds]float64
}

// UniformSampleConfig keeps each sampleable kind with probability rate and
// everything else always.
func UniformSampleConfig(rate float64, seed uint64) SampleConfig {
	cfg := SampleConfig{Seed: seed}
	for k := 0; k < numEventKinds; k++ {
		cfg.Rates[k] = rate
	}
	return cfg
}

// ParseSampleSpec parses the -sample flag syntax:
//
//	rate[:seed][,kind=rate ...]
//
// where rate is a float in [0, 1] or a fraction "1/N", seed is an unsigned
// integer (default 1), and kind is an event-kind name (compute, send, wait,
// io, recv) overriding the base rate. Examples: "1/64", "0.1:42",
// "1/64:7,send=1". The empty spec is rejected; use a nil Sampler to disable
// sampling.
func ParseSampleSpec(spec string) (SampleConfig, error) {
	var cfg SampleConfig
	if spec == "" {
		return cfg, fmt.Errorf("trace: empty sample spec")
	}
	parts := strings.Split(spec, ",")
	base := parts[0]
	seed := uint64(1)
	if i := strings.IndexByte(base, ':'); i >= 0 {
		s, err := strconv.ParseUint(base[i+1:], 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("trace: bad sample seed %q: %v", base[i+1:], err)
		}
		seed, base = s, base[:i]
	}
	rate, err := parseRate(base)
	if err != nil {
		return cfg, err
	}
	cfg = UniformSampleConfig(rate, seed)
	for _, kv := range parts[1:] {
		i := strings.IndexByte(kv, '=')
		if i < 0 {
			return cfg, fmt.Errorf("trace: sample override %q is not kind=rate", kv)
		}
		kind, ok := kindByName(kv[:i])
		if !ok {
			return cfg, fmt.Errorf("trace: unknown event kind %q in sample spec", kv[:i])
		}
		r, err := parseRate(kv[i+1:])
		if err != nil {
			return cfg, err
		}
		cfg.Rates[kind] = r
	}
	return cfg, nil
}

func parseRate(s string) (float64, error) {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, err1 := strconv.ParseFloat(s[:i], 64)
		den, err2 := strconv.ParseFloat(s[i+1:], 64)
		if err1 != nil || err2 != nil || den <= 0 {
			return 0, fmt.Errorf("trace: bad sample fraction %q", s)
		}
		return num / den, nil
	}
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad sample rate %q: %v", s, err)
	}
	if r < 0 || r > 1 || math.IsNaN(r) {
		return 0, fmt.Errorf("trace: sample rate %g outside [0, 1]", r)
	}
	return r, nil
}

func kindByName(name string) (machine.EventKind, bool) {
	for k := 0; k < numEventKinds; k++ {
		if machine.EventKind(k).String() == name {
			return machine.EventKind(k), true
		}
	}
	return 0, false
}

// sampleCell holds one processor's kept/dropped counters. Each processor
// goroutine only touches its own cell, so the atomics are uncontended; they
// exist so Snapshot can read mid-run and so out-of-range procs can share
// the overflow cell.
type sampleCell struct {
	kept    [numEventKinds]atomic.Int64
	dropped [numEventKinds]atomic.Int64
}

// Sampler is a deterministic machine.EventSampler. Decisions are pure
// functions of (seed, kind, proc, seq); the per-proc counters only observe
// them. Safe for concurrent use.
type Sampler struct {
	cfg      SampleConfig
	always   [numEventKinds]bool
	thresh   [numEventKinds]uint64
	kindSeed [numEventKinds]uint64
	cells    []sampleCell
	overflow sampleCell
}

var _ machine.EventSampler = (*Sampler)(nil)

// NewSampler builds a sampler for a machine of the given processor count.
func NewSampler(procs int, cfg SampleConfig) *Sampler {
	s := &Sampler{cfg: cfg, cells: make([]sampleCell, procs)}
	root := mix64(cfg.Seed ^ 0x9e3779b97f4a7c15)
	for k := 0; k < numEventKinds; k++ {
		rate := cfg.Rates[k]
		if alwaysKeep(machine.EventKind(k)) || rate >= 1 {
			s.always[k] = true
			s.cfg.Rates[k] = 1
			continue
		}
		if rate < 0 {
			rate = 0
			s.cfg.Rates[k] = 0
		}
		// The keep test uses the hash's top 53 bits against rate*2^53 —
		// the same uniform-in-[0,1) convention as internal/fault's u01,
		// kept in integers. rate < 1 here, so the product fits.
		s.thresh[k] = uint64(rate * (1 << 53))
		s.kindSeed[k] = mix64(mix64(root^sampleStream) ^ uint64(k))
	}
	return s
}

// SampleEvent implements machine.EventSampler.
func (s *Sampler) SampleEvent(proc int, seq int64, kind machine.EventKind) bool {
	k := int(kind)
	cell := &s.overflow
	if proc >= 0 && proc < len(s.cells) {
		cell = &s.cells[proc]
	}
	if s.always[k] {
		cell.kept[k].Add(1)
		return true
	}
	h := mix64(mix64(s.kindSeed[k]^uint64(proc)) ^ uint64(seq))
	if h>>11 < s.thresh[k] {
		cell.kept[k].Add(1)
		return true
	}
	cell.dropped[k].Add(1)
	return false
}

// Rate returns the configured keep rate of a kind (1 for always-keep
// kinds); 1/Rate is the scale factor for estimating unsampled counts.
func (s *Sampler) Rate(kind machine.EventKind) float64 {
	return s.cfg.Rates[int(kind)]
}

// KindSampleStats is one kind's row in a SampleSnapshot.
type KindSampleStats struct {
	Kind    string  `json:"kind"`
	Rate    float64 `json:"rate"`
	Kept    int64   `json:"kept"`
	Dropped int64   `json:"dropped"`
}

// SampleSnapshot is a point-in-time summary of a Sampler. Kept/Dropped
// counts are deterministic — every decision is a pure hash — so snapshots
// taken after a run can be diffed exactly across engines and hosts.
type SampleSnapshot struct {
	Seed    uint64            `json:"seed"`
	Kinds   []KindSampleStats `json:"kinds"`
	Kept    int64             `json:"kept"`
	Dropped int64             `json:"dropped"`
}

// Snapshot sums the per-processor cells. Kinds with no traffic and a rate
// of 1 are elided; the remaining rows appear in kind order.
func (s *Sampler) Snapshot() SampleSnapshot {
	snap := SampleSnapshot{Seed: s.cfg.Seed}
	for k := 0; k < numEventKinds; k++ {
		var kept, dropped int64
		for i := range s.cells {
			kept += s.cells[i].kept[k].Load()
			dropped += s.cells[i].dropped[k].Load()
		}
		kept += s.overflow.kept[k].Load()
		dropped += s.overflow.dropped[k].Load()
		snap.Kept += kept
		snap.Dropped += dropped
		if kept == 0 && dropped == 0 && s.cfg.Rates[k] >= 1 {
			continue
		}
		snap.Kinds = append(snap.Kinds, KindSampleStats{
			Kind: machine.EventKind(k).String(), Rate: s.cfg.Rates[k],
			Kept: kept, Dropped: dropped,
		})
	}
	return snap
}

// Sampled reports whether any events were actually dropped.
func (sn SampleSnapshot) Sampled() bool { return sn.Dropped > 0 }

// RatesString renders the non-unity rates compactly ("compute=1/64
// send=1/64"), using fraction form when the rate is a unit fraction.
func (sn SampleSnapshot) RatesString() string {
	var parts []string
	for _, k := range sn.Kinds {
		if k.Rate >= 1 {
			continue
		}
		parts = append(parts, k.Kind+"="+FormatRate(k.Rate))
	}
	if len(parts) == 0 {
		return "unsampled"
	}
	return strings.Join(parts, " ")
}

// FormatRate renders a keep rate, preferring the "1/N" unit-fraction form.
func FormatRate(rate float64) string {
	if rate > 0 && rate <= 0.5 {
		inv := 1 / rate
		if r := math.Round(inv); math.Abs(inv-r) < 1e-9 {
			return "1/" + strconv.FormatFloat(r, 'f', -1, 64)
		}
	}
	return strconv.FormatFloat(rate, 'g', -1, 64)
}

// WriteText renders the per-kind sample table.
func (sn SampleSnapshot) WriteText(w io.Writer) {
	if !sn.Sampled() {
		fmt.Fprintln(w, "sampling: every event kept")
		return
	}
	fmt.Fprintf(w, "%-12s %8s %12s %12s %14s\n", "kind", "rate", "kept", "dropped", "total")
	for _, k := range sn.Kinds {
		fmt.Fprintf(w, "%-12s %8s %12d %12d %14d\n", k.Kind, FormatRate(k.Rate), k.Kept, k.Dropped, k.Kept+k.Dropped)
	}
	fmt.Fprintf(w, "%-12s %8s %12d %12d %14d\n", "total", "", sn.Kept, sn.Dropped, sn.Kept+sn.Dropped)
}
