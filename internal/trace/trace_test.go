package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fxpar/internal/comm"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func tracedRun(n int, body func(p *machine.Proc)) *Collector {
	c := &Collector{}
	m := machine.New(n, sim.CostModel{
		FlopRate: 1e6, Alpha: 1e-4, Beta: 1e-7, SendOverhead: 1e-5, IORate: 1e6,
	})
	m.SetTracer(c)
	m.Run(body)
	return c
}

func TestCollectorRecordsComputeAndWait(t *testing.T) {
	c := tracedRun(2, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.Compute(5000)
			p.Send(1, 1, 8)
		} else {
			p.Recv(0)
		}
	})
	evs := c.Events()
	var kinds []machine.EventKind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
		if e.End < e.Start {
			t.Errorf("negative interval %+v", e)
		}
	}
	want := map[machine.EventKind]bool{machine.EvCompute: false, machine.EvSend: false, machine.EvWait: false}
	for _, k := range kinds {
		want[k] = true
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("no %v event recorded", k)
		}
	}
}

func TestEventsSortedDeterministically(t *testing.T) {
	run := func() []machine.Event {
		c := tracedRun(4, func(p *machine.Proc) {
			for i := 0; i < 5; i++ {
				p.Compute(float64(1000 * (p.ID() + 1)))
				p.Send((p.ID()+1)%4, 0, 8)
				p.Recv((p.ID() + 3) % 4)
			}
		})
		return c.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSpanAndBusyByKind(t *testing.T) {
	c := tracedRun(2, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.Compute(2000) // 2 ms
			p.IO(1000)      // 1 ms
		}
	})
	start, end := c.Span()
	if start != 0 || end < 0.0029 {
		t.Errorf("span = [%g, %g]", start, end)
	}
	busy := c.BusyByKind(2)
	if got := busy[machine.EvCompute][0]; got < 0.0019 || got > 0.0021 {
		t.Errorf("compute busy = %g", got)
	}
	if got := busy[machine.EvIO][0]; got < 0.0009 || got > 0.0011 {
		t.Errorf("io busy = %g", got)
	}
}

func TestGanttShowsPipelineOverlap(t *testing.T) {
	// Two stages exchanging a stream: both rows must contain compute glyphs,
	// and the downstream row must contain wait glyphs at the start.
	c := tracedRun(2, func(p *machine.Proc) {
		g := group.World(2)
		for i := 0; i < 5; i++ {
			if p.ID() == 0 {
				p.Compute(10000)
				comm.Send(p, g, 1, []float64{1})
			} else {
				comm.Recv[float64](p, g, 0)
				p.Compute(10000)
			}
		}
	})
	var buf bytes.Buffer
	Gantt(&buf, c, 2, 60)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[2], "#") {
		t.Errorf("missing compute glyphs:\n%s", out)
	}
	if !strings.Contains(lines[2], ".") {
		t.Errorf("downstream stage shows no waiting:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	Gantt(&buf, &Collector{}, 2, 40)
	if !strings.Contains(buf.String(), "no events") {
		t.Errorf("got %q", buf.String())
	}
}

func TestUtilization(t *testing.T) {
	c := tracedRun(2, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.Compute(10000)
			p.Send(1, 0, 8)
		} else {
			p.Recv(0)
		}
	})
	var buf bytes.Buffer
	Utilization(&buf, c, 2)
	out := buf.String()
	if !strings.Contains(out, "p0000") || !strings.Contains(out, "p0001") {
		t.Errorf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "%") {
		t.Errorf("no percentages:\n%s", out)
	}
}

func TestNoTracerNoOverhead(t *testing.T) {
	// Untraced runs record nothing and behave identically.
	m := machine.New(1, sim.CostModel{FlopRate: 1e6, IORate: 1e6})
	stats := m.Run(func(p *machine.Proc) { p.Compute(1000) })
	if stats.Procs[0].Finish != 0.001 {
		t.Errorf("finish = %g", stats.Procs[0].Finish)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := tracedRun(2, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.Compute(1000)
			p.Send(1, 0, 8)
		} else {
			p.Recv(0)
		}
	})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events exported")
	}
	kinds := map[string]bool{}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Errorf("event phase %v", e["ph"])
		}
		if e["dur"].(float64) < 0 {
			t.Errorf("negative duration")
		}
		kinds[e["name"].(string)] = true
	}
	for _, want := range []string{"compute", "send", "wait"} {
		if !kinds[want] {
			t.Errorf("missing %q events", want)
		}
	}
}
