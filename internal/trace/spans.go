package trace

// This file reconstructs spans: it turns the flat event stream of a traced
// run back into the nested, named structure the fx runtime and comm
// collectives emitted — which ON block, which collective, on which subgroup,
// at which nesting depth. Everything downstream of the tracer (per-group
// metrics, critical-path attribution, the span Gantt) is built on this view.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"fxpar/internal/machine"
)

// Span is one named, nested interval on one processor's timeline,
// reconstructed from an EvSpanBegin/EvSpanEnd marker pair.
type Span struct {
	Proc  int
	Label string
	// Depth is the nesting depth at which the span was opened (0 = outermost).
	Depth int
	Start float64
	End   float64
	// Parent indexes the enclosing span in Timeline.Spans (-1 at top level).
	Parent int
}

// Duration returns the span's virtual-time extent.
func (s Span) Duration() float64 { return s.End - s.Start }

// Timeline is an indexed view of a run's events: per-processor program
// order, the reconstructed span tree, and innermost-span ownership for
// every event. Spans on one processor follow stack discipline (guaranteed
// by machine.Proc.BeginSpan/EndSpan), so reconstruction is a single stack
// walk per processor.
type Timeline struct {
	// Events is sorted by (processor, sequence number): concatenated
	// per-processor program order.
	Events []machine.Event
	// Spans lists reconstructed spans in begin order per processor.
	Spans []Span
	// owner[i] is the index into Spans of the innermost span containing
	// Events[i], or -1. Span begin/end markers are owned by the enclosing
	// (parent) span for begins and the span itself for ends.
	owner []int
}

// NewTimeline builds a Timeline from a run's events (typically
// Collector.Events(); any order is accepted, the input is not modified).
func NewTimeline(evs []machine.Event) *Timeline {
	t := &Timeline{Events: append([]machine.Event(nil), evs...)}
	SortEvents(t.Events)
	t.owner = make([]int, len(t.Events))
	var open []int
	lastProc := -1
	for i, e := range t.Events {
		if e.Proc != lastProc {
			open = open[:0] // machine.Run guarantees balance per processor
			lastProc = e.Proc
		}
		top := -1
		if len(open) > 0 {
			top = open[len(open)-1]
		}
		switch e.Kind {
		case machine.EvSpanBegin:
			t.owner[i] = top
			t.Spans = append(t.Spans, Span{
				Proc: e.Proc, Label: e.Label, Depth: e.Depth,
				Start: e.Start, End: e.Start, Parent: top,
			})
			open = append(open, len(t.Spans)-1)
		case machine.EvSpanEnd:
			if top < 0 {
				t.owner[i] = -1
				continue
			}
			t.Spans[top].End = e.Start
			t.owner[i] = top
			open = open[:len(open)-1]
		default:
			t.owner[i] = top
		}
	}
	return t
}

// Owner returns the index into Spans of the innermost span containing event
// i, or -1 if the event is outside every span.
func (t *Timeline) Owner(i int) int { return t.owner[i] }

// OwnerLabel returns the label of the innermost span containing event i, or
// "" if the event is outside every span.
func (t *Timeline) OwnerLabel(i int) string {
	if o := t.owner[i]; o >= 0 {
		return t.Spans[o].Label
	}
	return ""
}

// SplitLabel decomposes a span label of the runtime's "op:detail:group[...]"
// convention into the operation (everything before the group part, e.g.
// "barrier" or "on:G2") and the group identity (e.g. "group[2 3]"). Labels
// without a group part return group = "".
func SplitLabel(label string) (op, group string) {
	if i := strings.Index(label, ":group["); i >= 0 {
		return label[:i], label[i+1:]
	}
	return label, ""
}

// SpanSummary prints one row per distinct span label: activation count,
// total and mean virtual time (summed over all member processors), sorted
// by total time descending. It answers "where do the subgroups spend their
// time" at a glance.
func SpanSummary(w io.Writer, c *Collector) {
	t := NewTimeline(c.Events())
	type agg struct {
		count int
		total float64
	}
	byLabel := map[string]*agg{}
	for _, s := range t.Spans {
		a := byLabel[s.Label]
		if a == nil {
			a = &agg{}
			byLabel[s.Label] = a
		}
		a.count++
		a.total += s.Duration()
	}
	if len(byLabel) == 0 {
		fmt.Fprintln(w, "trace: no spans")
		return
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		a, b := byLabel[labels[i]], byLabel[labels[j]]
		if a.total != b.total {
			return a.total > b.total
		}
		return labels[i] < labels[j]
	})
	wl := len("span")
	for _, l := range labels {
		if len(l) > wl {
			wl = len(l)
		}
	}
	fmt.Fprintf(w, "%-*s %7s %12s %12s\n", wl, "span", "count", "total(s)", "mean(s)")
	for _, l := range labels {
		a := byLabel[l]
		fmt.Fprintf(w, "%-*s %7d %12.6f %12.6f\n", wl, l, a.count, a.total, a.total/float64(a.count))
	}
}

// spanLetters is the alphabet used by SpanGantt to key distinct labels.
const spanLetters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// SpanGantt renders one row per processor over a fixed-width time axis where
// each cell shows the *innermost named span* active in that bucket (deeper
// spans overwrite shallower ones), with a legend mapping letters to span
// labels. Side by side with Gantt it shows not just *that* a processor was
// computing or waiting but *which subgroup scope* it was doing it in.
func SpanGantt(w io.Writer, c *Collector, procs int, width int) {
	if width < 10 {
		width = 10
	}
	start, end := c.Span()
	if end <= start {
		fmt.Fprintln(w, "trace: no events")
		return
	}
	t := NewTimeline(c.Events())
	if len(t.Spans) == 0 {
		fmt.Fprintln(w, "trace: no spans")
		return
	}
	labels := map[string]bool{}
	for _, s := range t.Spans {
		labels[s.Label] = true
	}
	sorted := make([]string, 0, len(labels))
	for l := range labels {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	letter := map[string]byte{}
	for i, l := range sorted {
		if i < len(spanLetters) {
			letter[l] = spanLetters[i]
		} else {
			letter[l] = '*'
		}
	}
	scale := float64(width) / (end - start)
	rows := make([][]byte, procs)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	// Spans are listed in begin order per processor, so parents precede the
	// children that overwrite them.
	for _, s := range t.Spans {
		if s.Proc >= procs || s.End <= s.Start {
			continue
		}
		b0 := int((s.Start - start) * scale)
		b1 := int((s.End - start) * scale)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			rows[s.Proc][b] = letter[s.Label]
		}
	}
	fmt.Fprintf(w, "spans %.6fs .. %.6fs\n", start, end)
	for pr := 0; pr < procs; pr++ {
		fmt.Fprintf(w, "p%02d |%s|\n", pr, rows[pr])
	}
	for _, l := range sorted {
		fmt.Fprintf(w, "  %c = %s\n", letter[l], l)
	}
}
