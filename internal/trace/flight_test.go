package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fxpar/internal/machine"
)

// TestFlightRecorderStalledRun is the postmortem acceptance test: a receive
// that never completes must leave an open EvWait marker visible in the ring
// snapshot for the blocked processor — the one event a Collector can never
// show, because the machine records waits only after they finish.
func TestFlightRecorderStalledRun(t *testing.T) {
	fr := NewFlightRecorder(2, 8)
	m := machine.New(2, intCost())
	m.SetTracer(fr)
	// p1 receives from p0, but p0 never sends: the run deadlocks by
	// construction. Run it on a leaked goroutine and observe the stall from
	// outside — exactly how a campaign monitor would. The open-wait marker is
	// recorded before the processor suspends, so it is visible regardless of
	// what the engine then does with the stuck run (the goroutine engine
	// hangs forever; the coop engine detects the deadlock and panics — which
	// we swallow, since this test is about the recorder, not the verdict).
	go func() {
		defer func() { _ = recover() }()
		m.Run(func(p *machine.Proc) {
			if p.ID() == 0 {
				p.Compute(1)
				return
			}
			p.BeginSpan("on:cons:group[1]")
			p.Compute(2)
			p.Recv(0) // blocks forever
			p.EndSpan()
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, blocked := fr.OpenWait(1); blocked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocked processor never surfaced an open wait marker")
		}
		time.Sleep(time.Millisecond)
	}

	peer, since, blocked := fr.OpenWait(1)
	if !blocked || peer != 0 {
		t.Fatalf("OpenWait(1) = (%d, %g, %v), want peer 0 blocked", peer, since, blocked)
	}
	if since != 2 { // p1's virtual clock after Compute(2) under intCost
		t.Errorf("blocked since %g, want virtual time 2", since)
	}

	// The ring snapshot's last event for p1 is the open wait, preceded by its
	// program history (span begin, compute).
	snap := fr.Snapshot()
	evs := snap[1]
	if len(evs) == 0 {
		t.Fatal("empty ring for the blocked processor")
	}
	last := evs[len(evs)-1]
	if last.Kind != machine.EvWait || last.End != last.Start || last.Peer != 0 {
		t.Errorf("last ring event = %+v, want open EvWait on peer 0", last)
	}
	// p0 ran to completion; its ring must not report a stall.
	if _, _, blocked := fr.OpenWait(0); blocked {
		t.Error("completed processor reported as blocked")
	}

	var buf bytes.Buffer
	fr.WriteText(&buf, 8)
	if !strings.Contains(buf.String(), "BLOCKED") {
		t.Errorf("postmortem does not flag the stall:\n%s", buf.String())
	}
}

// TestFlightRecorderRingWraps: the ring keeps exactly the last depth events,
// oldest first.
func TestFlightRecorderRingWraps(t *testing.T) {
	fr := NewFlightRecorder(1, 4)
	for i := 0; i < 10; i++ {
		fr.Record(machine.Event{Proc: 0, Kind: machine.EvCompute, Start: float64(i), End: float64(i + 1), Seq: int64(i)})
	}
	evs := fr.Snapshot()[0]
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := float64(6 + i); e.Start != want {
			t.Errorf("ring[%d].Start = %g, want %g (oldest first)", i, e.Start, want)
		}
	}
}

// TestFlightRecorderCompletedWaitClosesMarker: when the awaited message does
// arrive, the machine's closed EvWait interval follows the open marker, so
// OpenWait no longer reports a stall.
func TestFlightRecorderCompletedWaitClosesMarker(t *testing.T) {
	fr := NewFlightRecorder(2, 8)
	m := machine.New(2, intCost())
	m.SetTracer(fr)
	m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			p.Compute(10)
			p.Send(1, 99, 4)
		} else {
			p.Recv(0)
		}
	})
	if _, _, blocked := fr.OpenWait(1); blocked {
		t.Error("completed receive still reported as blocked")
	}
	// The open marker (if the host scheduler made p1 block) must be followed
	// by a closed wait or recv marker; either way the newest event is closed.
	evs := fr.Snapshot()[1]
	if len(evs) == 0 {
		t.Fatal("empty ring")
	}
	last := evs[len(evs)-1]
	if last.Kind == machine.EvWait && last.End == last.Start {
		t.Errorf("newest event is still an open wait: %+v", last)
	}
}

// TestFlightRecorderOutOfRange: events for unknown processors are dropped,
// not folded, and OpenWait on a bad id is false.
func TestFlightRecorderOutOfRange(t *testing.T) {
	fr := NewFlightRecorder(1, 4)
	fr.Record(machine.Event{Proc: 7, Kind: machine.EvCompute})
	fr.RecordBlocked(-1, 0, 0)
	if _, _, blocked := fr.OpenWait(7); blocked {
		t.Error("OpenWait(out of range) = true")
	}
}
