package trace

// Online aggregation sinks: tracers that fold the event stream into fixed-
// size summaries as it is produced, instead of retaining every event for a
// post-hoc pass. Memory is O(processors + communicating pairs) no matter how
// long the run, which is what a 1024-processor campaign needs. State is
// sharded per processor — each cell is only ever written by its own
// processor goroutine, so recording never contends — and because all
// accumulation is per-processor until Snapshot merges the cells in processor
// order, the results are byte-identical to the same folds computed post-hoc
// from Collector.Events() (which is per-processor program order).

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fxpar/internal/machine"
)

// parallelSnapshotMin is the processor count above which sink snapshots
// fold their per-processor cells with a parallel range merge. All folded
// quantities are integers or min/max, so the grouping cannot change the
// result — parallelism here is free of determinism risk.
const parallelSnapshotMin = 4096

// parallelRanges splits [0, n) into one contiguous chunk per worker, runs f
// on each chunk concurrently, and returns the partial results in ascending
// range order (so callers that fold them sequentially keep a fixed fold
// topology).
func parallelRanges[T any](n int, f func(lo, hi int) T) []T {
	workers := runtime.GOMAXPROCS(0)
	if workers > 16 {
		workers = 16
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	parts := make([]T, 0, workers)
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		parts = append(parts, *new(T))
		wg.Add(1)
		go func(slot int, lo, hi int) {
			defer wg.Done()
			parts[slot] = f(lo, hi)
		}(len(parts)-1, lo, hi)
	}
	wg.Wait()
	return parts
}

// ProcUtil is one processor's accumulated virtual time per activity.
type ProcUtil struct {
	Compute float64 `json:"compute"`
	Send    float64 `json:"send"`
	Wait    float64 `json:"wait"`
	IO      float64 `json:"io"`
	Events  int64   `json:"events"`
}

// utilCell is the per-processor accumulator of a UtilSink. Only the owning
// processor goroutine writes it; the mutex exists so Snapshot can read a
// consistent cell mid-run.
type utilCell struct {
	mu    sync.Mutex
	u     ProcUtil
	start float64
	end   float64
	seen  bool
}

// UtilSink streams per-processor utilization: compute/send/wait/IO time and
// the trace's virtual-time extent, in O(procs) memory.
type UtilSink struct {
	cells   []utilCell
	dropped atomic.Int64
}

var _ machine.Tracer = (*UtilSink)(nil)

// NewUtilSink returns a sink for a machine of the given processor count.
func NewUtilSink(procs int) *UtilSink {
	return &UtilSink{cells: make([]utilCell, procs)}
}

// Record implements machine.Tracer.
func (s *UtilSink) Record(e machine.Event) {
	if e.Proc < 0 || e.Proc >= len(s.cells) {
		s.dropped.Add(1)
		return
	}
	c := &s.cells[e.Proc]
	d := e.End - e.Start
	c.mu.Lock()
	c.u.Events++
	if !c.seen {
		c.start, c.end, c.seen = e.Start, e.End, true
	} else {
		if e.Start < c.start {
			c.start = e.Start
		}
		if e.End > c.end {
			c.end = e.End
		}
	}
	switch e.Kind {
	case machine.EvCompute:
		c.u.Compute += d
	case machine.EvSend:
		c.u.Send += d
	case machine.EvWait, machine.EvTimeout:
		c.u.Wait += d
	case machine.EvIO:
		c.u.IO += d
	}
	c.mu.Unlock()
}

// UtilSnapshot is a point-in-time view of a UtilSink.
type UtilSnapshot struct {
	PerProc []ProcUtil `json:"perProc"`
	Start   float64    `json:"start"`
	End     float64    `json:"end"`
	// Dropped counts events whose processor id was outside the sink's
	// configured range.
	Dropped int64 `json:"dropped"`
}

// utilExtent is one shard range's virtual-time extent.
type utilExtent struct {
	start, end float64
	seen       bool
}

func (a *utilExtent) fold(b utilExtent) {
	if !b.seen {
		return
	}
	if !a.seen {
		*a = b
		return
	}
	if b.start < a.start {
		a.start = b.start
	}
	if b.end > a.end {
		a.end = b.end
	}
}

// Snapshot merges the per-processor cells in processor order. Safe to call
// mid-run; a mid-run snapshot is internally consistent per processor. At
// parallelSnapshotMin processors and beyond the per-cell copies run as a
// parallel range merge — each processor's row is independent and the
// trace extent is a min/max fold, so the result is identical either way.
func (s *UtilSink) Snapshot() UtilSnapshot {
	out := UtilSnapshot{PerProc: make([]ProcUtil, len(s.cells)), Dropped: s.dropped.Load()}
	copyRange := func(lo, hi int) utilExtent {
		var ext utilExtent
		for i := lo; i < hi; i++ {
			c := &s.cells[i]
			c.mu.Lock()
			out.PerProc[i] = c.u
			ext.fold(utilExtent{start: c.start, end: c.end, seen: c.seen})
			c.mu.Unlock()
		}
		return ext
	}
	var total utilExtent
	if len(s.cells) >= parallelSnapshotMin {
		for _, ext := range parallelRanges(len(s.cells), copyRange) {
			total.fold(ext)
		}
	} else {
		total = copyRange(0, len(s.cells))
	}
	if total.seen {
		out.Start, out.End = total.start, total.end
	}
	return out
}

// WriteText renders per-processor busy/wait fractions in the same layout as
// Utilization, but from the streamed summary instead of the full event log.
func (s UtilSnapshot) WriteText(w io.Writer) {
	total := s.End - s.Start
	if total <= 0 {
		fmt.Fprintln(w, "trace: no events")
		return
	}
	fmt.Fprintf(w, "%5s %9s %9s %9s %9s\n", "proc", "compute", "send", "wait", "io")
	for pr, u := range s.PerProc {
		fmt.Fprintf(w, "p%04d %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			pr, u.Compute/total*100, u.Send/total*100, u.Wait/total*100, u.IO/total*100)
	}
}

// CommEdge is one ordered (src, dst) cell of the communication matrix.
type CommEdge struct {
	Src        int   `json:"src"`
	Dst        int   `json:"dst"`
	MsgsSent   int64 `json:"msgsSent"`
	BytesSent  int64 `json:"bytesSent"`
	MsgsRecvd  int64 `json:"msgsRecvd"`
	BytesRecvd int64 `json:"bytesRecvd"`
}

type commCounts struct {
	msgsSent, bytesSent, msgsRecvd, bytesRecvd int64
}

// commDenseProcs is the largest machine for which a recording shard uses a
// dense per-peer array (two commCounts per possible peer — at 128 procs,
// ~8KB per active shard) instead of a map. The array is faster to record
// into; above the threshold only the map path is allowed, keeping total
// matrix memory O(active pairs) instead of O(P^2) — the property the
// P=4096 memory guard test pins.
const commDenseProcs = 128

// commShard holds the matrix cells recorded by one processor: sends keyed by
// (proc, peer), receive markers keyed by (peer, proc). One pair's sent and
// received counts may live in different shards (sender's and receiver's);
// Snapshot merges them. Small machines use the dense array (sends at
// [peer], receives at [procs+peer]); large ones the sparse map.
type commShard struct {
	mu    sync.Mutex
	cells map[[2]int]*commCounts
	dense []commCounts
}

// CommMatrix streams the (src, dst) communication matrix — message and byte
// counts per ordered processor pair — in O(pairs actually used) memory.
type CommMatrix struct {
	procs   int
	shards  []commShard
	dropped atomic.Int64
}

var _ machine.Tracer = (*CommMatrix)(nil)

// NewCommMatrix returns a matrix sink for a machine of the given size.
func NewCommMatrix(procs int) *CommMatrix {
	return &CommMatrix{procs: procs, shards: make([]commShard, procs)}
}

// Record implements machine.Tracer. Only EvSend and EvRecv events touch the
// matrix; everything else is ignored.
func (m *CommMatrix) Record(e machine.Event) {
	if e.Kind != machine.EvSend && e.Kind != machine.EvRecv {
		return
	}
	if e.Proc < 0 || e.Proc >= len(m.shards) || e.Peer < 0 || e.Peer >= m.procs {
		m.dropped.Add(1)
		return
	}
	sh := &m.shards[e.Proc]
	sh.mu.Lock()
	if m.procs <= commDenseProcs {
		if sh.dense == nil {
			sh.dense = make([]commCounts, 2*m.procs)
		}
		if e.Kind == machine.EvSend {
			c := &sh.dense[e.Peer]
			c.msgsSent++
			c.bytesSent += int64(e.Bytes)
		} else {
			c := &sh.dense[m.procs+e.Peer]
			c.msgsRecvd++
			c.bytesRecvd += int64(e.Bytes)
		}
		sh.mu.Unlock()
		return
	}
	var key [2]int
	if e.Kind == machine.EvSend {
		key = [2]int{e.Proc, e.Peer}
	} else {
		key = [2]int{e.Peer, e.Proc}
	}
	if sh.cells == nil {
		sh.cells = make(map[[2]int]*commCounts)
	}
	c := sh.cells[key]
	if c == nil {
		c = &commCounts{}
		sh.cells[key] = c
	}
	if e.Kind == machine.EvSend {
		c.msgsSent++
		c.bytesSent += int64(e.Bytes)
	} else {
		c.msgsRecvd++
		c.bytesRecvd += int64(e.Bytes)
	}
	sh.mu.Unlock()
}

// mergeInto folds one shard's cells into the accumulator map.
func (sh *commShard) mergeInto(procs, owner int, merged map[[2]int]*CommEdge) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fold := func(key [2]int, c *commCounts) {
		e := merged[key]
		if e == nil {
			e = &CommEdge{Src: key[0], Dst: key[1]}
			merged[key] = e
		}
		e.MsgsSent += c.msgsSent
		e.BytesSent += c.bytesSent
		e.MsgsRecvd += c.msgsRecvd
		e.BytesRecvd += c.bytesRecvd
	}
	for peer := range sh.dense {
		c := &sh.dense[peer]
		if c.msgsSent == 0 && c.msgsRecvd == 0 && c.bytesSent == 0 && c.bytesRecvd == 0 {
			continue
		}
		if peer < procs {
			fold([2]int{owner, peer}, c)
		} else {
			fold([2]int{peer - procs, owner}, c)
		}
	}
	for key, c := range sh.cells {
		fold(key, c)
	}
}

// Snapshot merges the shards into edges sorted by (src, dst). Counts are
// integers, so the result is exact regardless of recording interleaving —
// and regardless of merge grouping, which lets large matrices merge their
// shards as a parallel range tree (each worker folds a contiguous shard
// range, the partial maps fold pairwise) with no effect on the output.
func (m *CommMatrix) Snapshot() []CommEdge {
	merged := map[[2]int]*CommEdge{}
	if len(m.shards) >= parallelSnapshotMin {
		for _, part := range parallelRanges(len(m.shards), func(lo, hi int) map[[2]int]*CommEdge {
			local := map[[2]int]*CommEdge{}
			for i := lo; i < hi; i++ {
				m.shards[i].mergeInto(m.procs, i, local)
			}
			return local
		}) {
			for key, c := range part {
				e := merged[key]
				if e == nil {
					merged[key] = c
					continue
				}
				e.MsgsSent += c.MsgsSent
				e.BytesSent += c.BytesSent
				e.MsgsRecvd += c.MsgsRecvd
				e.BytesRecvd += c.BytesRecvd
			}
		}
	} else {
		for i := range m.shards {
			m.shards[i].mergeInto(m.procs, i, merged)
		}
	}
	out := make([]CommEdge, 0, len(merged))
	for _, e := range merged {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// TopCommEdges returns the k heaviest edges by total byte traffic
// (sent + received), ties broken by (src, dst) so the selection is
// deterministic. k <= 0 or k >= len(edges) returns all edges (re-ordered).
// fxprof uses it to render a bounded matrix at large P.
func TopCommEdges(edges []CommEdge, k int) []CommEdge {
	ordered := append([]CommEdge(nil), edges...)
	sort.Slice(ordered, func(i, j int) bool {
		bi := ordered[i].BytesSent + ordered[i].BytesRecvd
		bj := ordered[j].BytesSent + ordered[j].BytesRecvd
		if bi != bj {
			return bi > bj
		}
		if ordered[i].Src != ordered[j].Src {
			return ordered[i].Src < ordered[j].Src
		}
		return ordered[i].Dst < ordered[j].Dst
	})
	if k > 0 && k < len(ordered) {
		ordered = ordered[:k]
	}
	return ordered
}

// CommFromEvents computes the same communication matrix post-hoc from a
// recorded event slice (typically Collector.Events()); the reference
// implementation the streaming matrix is tested against.
func CommFromEvents(evs []machine.Event) []CommEdge {
	maxProc := 0
	for _, e := range evs {
		if e.Proc > maxProc {
			maxProc = e.Proc
		}
	}
	m := NewCommMatrix(maxProc + 1)
	for _, e := range evs {
		m.Record(e)
	}
	return m.Snapshot()
}

// WriteCommMatrix renders the edges as an aligned table, heaviest byte
// traffic first (ties by src, dst).
func WriteCommMatrix(w io.Writer, edges []CommEdge) {
	if len(edges) == 0 {
		fmt.Fprintln(w, "trace: no communication")
		return
	}
	ordered := append([]CommEdge(nil), edges...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].BytesSent != ordered[j].BytesSent {
			return ordered[i].BytesSent > ordered[j].BytesSent
		}
		if ordered[i].Src != ordered[j].Src {
			return ordered[i].Src < ordered[j].Src
		}
		return ordered[i].Dst < ordered[j].Dst
	})
	fmt.Fprintf(w, "%5s %5s %9s %12s %9s %12s\n", "src", "dst", "msgs", "bytes", "recvd", "recvdBytes")
	for _, e := range ordered {
		fmt.Fprintf(w, "p%04d p%04d %9d %12d %9d %12d\n",
			e.Src, e.Dst, e.MsgsSent, e.BytesSent, e.MsgsRecvd, e.BytesRecvd)
	}
}
