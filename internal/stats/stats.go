// Package stats meters streams of data sets flowing through a task-parallel
// program in virtual time, producing the two performance criteria of
// Section 5.1: throughput (data sets per second) and latency (seconds per
// data set).
//
// Recording is host-thread-safe (different simulated processors record
// concurrently), and the recorded values are virtual times, so the derived
// metrics are deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"fxpar/internal/sketch"
)

// Stream records the injection and completion virtual times of each data
// set in a stream. It has two modes:
//
//   - Retaining (NewStream): per-set times are kept, duplicates tolerated
//     (earliest injection, latest completion win), latency statistics exact.
//     Memory is O(sets).
//   - Sketch (NewSketchStream): the scale tier. Latencies fold into a
//     mergeable fixed-bin quantile sketch at completion time and the
//     injection entry is deleted, so memory is O(in-flight sets) — flat for
//     a stream of any length. The mode demands the exactly-once metering
//     contract every mapping in this codebase already obeys (one processor —
//     group rank 0 — records each set's injection and completion); a second
//     Complete for a set panics like a never-injected set does.
type Stream struct {
	mu       sync.Mutex
	inject   map[int]float64
	complete map[int]float64 // nil in sketch mode

	// Sketch-mode accumulators. The sketch's integer bins make the latency
	// statistics order-independent; the scalar folds (count, min/max, first/
	// last completion) are exact, so Summarize stays deterministic no matter
	// how host scheduling interleaves Complete calls.
	sketch        *sketch.Sketch
	count         int
	firstC, lastC float64
	maxLat        float64
}

// NewStream returns an empty stream meter in retaining mode.
func NewStream() *Stream {
	return &Stream{inject: make(map[int]float64), complete: make(map[int]float64)}
}

// NewSketchStream returns an empty stream meter in sketch mode: O(in-flight)
// memory, latency quantiles from a fixed-bin sketch.
func NewSketchStream() *Stream {
	return &Stream{inject: make(map[int]float64), sketch: &sketch.Sketch{}, firstC: math.Inf(1)}
}

// Sketched reports whether the meter is in sketch mode.
func (s *Stream) Sketched() bool { return s.sketch != nil }

// Inject records that data set i entered the system at virtual time t.
// Recording the same set twice keeps the earlier time (several processors
// of the first stage may record the same set).
func (s *Stream) Inject(i int, t float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.inject[i]; !ok || t < old {
		s.inject[i] = t
	}
}

// Complete records that data set i left the system at virtual time t.
// In retaining mode, recording the same set twice keeps the later time; in
// sketch mode the latency folds into the sketch immediately and the set's
// injection entry is released, so each set must complete exactly once.
func (s *Stream) Complete(i int, t float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sketch == nil {
		if old, ok := s.complete[i]; !ok || t > old {
			s.complete[i] = t
		}
		return
	}
	inj, ok := s.inject[i]
	if !ok {
		panic(fmt.Sprintf("stats: data set %d completed but never injected (or completed twice in sketch mode)", i))
	}
	delete(s.inject, i)
	lat := t - inj
	if lat < 0 {
		panic(fmt.Sprintf("stats: data set %d completed at %g before injection at %g", i, t, inj))
	}
	s.sketch.Add(lat)
	if lat > s.maxLat {
		s.maxLat = lat
	}
	if t < s.firstC {
		s.firstC = t
	}
	if t > s.lastC {
		s.lastC = t
	}
	s.count++
}

// Count returns the number of completed data sets.
func (s *Stream) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sketch != nil {
		return s.count
	}
	return len(s.complete)
}

// InFlight returns the number of injected-but-uncompleted data sets — the
// sketch mode's memory footprint.
func (s *Stream) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inject)
}

// Result summarizes a metered stream.
type Result struct {
	// Sets is the number of completed data sets.
	Sets int
	// Throughput is the steady-state rate in data sets per virtual second:
	// (n-1) / (last completion - first completion) for n > 1. When all n
	// sets complete at the same virtual instant (a one-batch stream, e.g.
	// every module finishing together), that span is degenerate and the
	// rate falls back to n / Latency — n sets delivered in one latency's
	// worth of pipeline occupancy. For a single-set stream there is no
	// steady state at all, and by convention Throughput = 1 / Latency.
	Throughput float64
	// Latency is the mean completion-minus-injection time. In sketch mode it
	// is the sketch's bin-weighted mean (within one bin width of exact).
	Latency float64
	// MaxLatency is the worst per-set latency (exact in both modes).
	MaxLatency float64
	// LatencyP50/LatencyP99 are per-set latency quantiles: exact order
	// statistics in retaining mode, sketch bin estimates in sketch mode
	// (within one log-linear bin of exact — the equivalence the tests pin).
	LatencyP50 float64
	LatencyP99 float64
	// Sketched reports that the latency figures came from the fixed-bin
	// sketch, so consumers can mark them as estimates.
	Sketched bool
}

// Summarize computes the stream's Result. It panics if a completed set was
// never injected (a metering bug) and returns a zero Result for an empty
// stream.
func (s *Stream) Summarize() Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sketch != nil {
		return s.summarizeSketch()
	}
	n := len(s.complete)
	if n == 0 {
		return Result{}
	}
	var firstC, lastC float64
	firstC = math.Inf(1)
	var sumLat, maxLat float64
	// Sum in set order: float addition is order-sensitive at the ulp, and
	// map iteration order is randomized, so ranging the map directly makes
	// Latency differ between identical runs.
	sets := make([]int, 0, n)
	for i := range s.complete {
		sets = append(sets, i)
	}
	sort.Ints(sets)
	lats := make([]float64, 0, n)
	for _, i := range sets {
		c := s.complete[i]
		inj, ok := s.inject[i]
		if !ok {
			panic(fmt.Sprintf("stats: data set %d completed but never injected", i))
		}
		lat := c - inj
		if lat < 0 {
			panic(fmt.Sprintf("stats: data set %d completed at %g before injection at %g", i, c, inj))
		}
		sumLat += lat
		lats = append(lats, lat)
		if lat > maxLat {
			maxLat = lat
		}
		if c < firstC {
			firstC = c
		}
		if c > lastC {
			lastC = c
		}
	}
	r := Result{
		Sets: n, Latency: sumLat / float64(n), MaxLatency: maxLat,
		LatencyP50: sketch.ExactQuantile(lats, 0.5),
		LatencyP99: sketch.ExactQuantile(lats, 0.99),
	}
	switch {
	case n > 1 && lastC > firstC:
		r.Throughput = float64(n-1) / (lastC - firstC)
	case n > 1 && r.Latency > 0:
		// Degenerate span: all completions share one virtual timestamp, so
		// the inter-completion rate is undefined. The stream still delivered
		// n sets, so account for all of them rather than collapsing to the
		// single-set rate (which under-reports by up to n×).
		r.Throughput = float64(n) / r.Latency
	case r.Latency > 0:
		// Single-set convention: one set in one latency.
		r.Throughput = 1 / r.Latency
	}
	return r
}

// summarizeSketch derives the Result from the sketch-mode accumulators.
// Caller holds s.mu. Every input is either an exact scalar fold (count,
// max latency, completion extrema) or a pure function of the sketch's
// integer bins, so the result is deterministic regardless of the order
// Complete calls arrived in.
func (s *Stream) summarizeSketch() Result {
	n := s.count
	if n == 0 {
		return Result{Sketched: true}
	}
	r := Result{
		Sets: n, Latency: s.sketch.Mean(), MaxLatency: s.maxLat,
		LatencyP50: s.sketch.Quantile(0.5),
		LatencyP99: s.sketch.Quantile(0.99),
		Sketched:   true,
	}
	switch {
	case n > 1 && s.lastC > s.firstC:
		r.Throughput = float64(n-1) / (s.lastC - s.firstC)
	case n > 1 && r.Latency > 0:
		r.Throughput = float64(n) / r.Latency
	case r.Latency > 0:
		r.Throughput = 1 / r.Latency
	}
	return r
}

// LatencySketch returns a copy of the sketch-mode latency sketch (zero-value
// sketch in retaining mode), for merging module-level meters upward.
func (s *Stream) LatencySketch() sketch.Sketch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sketch == nil {
		return sketch.Sketch{}
	}
	return *s.sketch
}

func (r Result) String() string {
	return fmt.Sprintf("%d sets, %.3f sets/s, latency %.4f s (max %.4f s)",
		r.Sets, r.Throughput, r.Latency, r.MaxLatency)
}
