// Package stats meters streams of data sets flowing through a task-parallel
// program in virtual time, producing the two performance criteria of
// Section 5.1: throughput (data sets per second) and latency (seconds per
// data set).
//
// Recording is host-thread-safe (different simulated processors record
// concurrently), and the recorded values are virtual times, so the derived
// metrics are deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Stream records the injection and completion virtual times of each data
// set in a stream.
type Stream struct {
	mu       sync.Mutex
	inject   map[int]float64
	complete map[int]float64
}

// NewStream returns an empty stream meter.
func NewStream() *Stream {
	return &Stream{inject: make(map[int]float64), complete: make(map[int]float64)}
}

// Inject records that data set i entered the system at virtual time t.
// Recording the same set twice keeps the earlier time (several processors
// of the first stage may record the same set).
func (s *Stream) Inject(i int, t float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.inject[i]; !ok || t < old {
		s.inject[i] = t
	}
}

// Complete records that data set i left the system at virtual time t.
// Recording the same set twice keeps the later time.
func (s *Stream) Complete(i int, t float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.complete[i]; !ok || t > old {
		s.complete[i] = t
	}
}

// Count returns the number of completed data sets.
func (s *Stream) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.complete)
}

// Result summarizes a metered stream.
type Result struct {
	// Sets is the number of completed data sets.
	Sets int
	// Throughput is the steady-state rate in data sets per virtual second:
	// (n-1) / (last completion - first completion) for n > 1. When all n
	// sets complete at the same virtual instant (a one-batch stream, e.g.
	// every module finishing together), that span is degenerate and the
	// rate falls back to n / Latency — n sets delivered in one latency's
	// worth of pipeline occupancy. For a single-set stream there is no
	// steady state at all, and by convention Throughput = 1 / Latency.
	Throughput float64
	// Latency is the mean completion-minus-injection time.
	Latency float64
	// MaxLatency is the worst per-set latency.
	MaxLatency float64
}

// Summarize computes the stream's Result. It panics if a completed set was
// never injected (a metering bug) and returns a zero Result for an empty
// stream.
func (s *Stream) Summarize() Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.complete)
	if n == 0 {
		return Result{}
	}
	var firstC, lastC float64
	firstC = math.Inf(1)
	var sumLat, maxLat float64
	// Sum in set order: float addition is order-sensitive at the ulp, and
	// map iteration order is randomized, so ranging the map directly makes
	// Latency differ between identical runs.
	sets := make([]int, 0, n)
	for i := range s.complete {
		sets = append(sets, i)
	}
	sort.Ints(sets)
	for _, i := range sets {
		c := s.complete[i]
		inj, ok := s.inject[i]
		if !ok {
			panic(fmt.Sprintf("stats: data set %d completed but never injected", i))
		}
		lat := c - inj
		if lat < 0 {
			panic(fmt.Sprintf("stats: data set %d completed at %g before injection at %g", i, c, inj))
		}
		sumLat += lat
		if lat > maxLat {
			maxLat = lat
		}
		if c < firstC {
			firstC = c
		}
		if c > lastC {
			lastC = c
		}
	}
	r := Result{Sets: n, Latency: sumLat / float64(n), MaxLatency: maxLat}
	switch {
	case n > 1 && lastC > firstC:
		r.Throughput = float64(n-1) / (lastC - firstC)
	case n > 1 && r.Latency > 0:
		// Degenerate span: all completions share one virtual timestamp, so
		// the inter-completion rate is undefined. The stream still delivered
		// n sets, so account for all of them rather than collapsing to the
		// single-set rate (which under-reports by up to n×).
		r.Throughput = float64(n) / r.Latency
	case r.Latency > 0:
		// Single-set convention: one set in one latency.
		r.Throughput = 1 / r.Latency
	}
	return r
}

func (r Result) String() string {
	return fmt.Sprintf("%d sets, %.3f sets/s, latency %.4f s (max %.4f s)",
		r.Sets, r.Throughput, r.Latency, r.MaxLatency)
}
