package stats

import (
	"math"
	"testing"

	"fxpar/internal/metrics"
)

// feedBoth records the same (inject, complete) schedule into a retaining and
// a sketch-mode stream.
func feedBoth(pairs [][2]float64) (exact, sketched *Stream) {
	exact, sketched = NewStream(), NewSketchStream()
	for i, p := range pairs {
		exact.Inject(i, p[0])
		sketched.Inject(i, p[0])
	}
	for i, p := range pairs {
		exact.Complete(i, p[1])
		sketched.Complete(i, p[1])
	}
	return exact, sketched
}

// TestSketchModeMatchesExactWithinOneBin is the exact-vs-sketch equivalence
// contract: same stream, both modes — identical set counts, throughput, and
// max latency; mean and quantiles within one sketch bin (≤ ~7% relative for
// the 8-subbucket binning).
func TestSketchModeMatchesExactWithinOneBin(t *testing.T) {
	var pairs [][2]float64
	x := uint64(99)
	for i := 0; i < 500; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		inj := float64(i) * 0.01
		lat := 0.05 + float64(x%1000)/2000 // 50..550 ms
		pairs = append(pairs, [2]float64{inj, inj + lat})
	}
	exact, sketched := feedBoth(pairs)
	re, rs := exact.Summarize(), sketched.Summarize()
	if re.Sketched || !rs.Sketched {
		t.Fatalf("Sketched flags: exact=%v sketch=%v", re.Sketched, rs.Sketched)
	}
	if rs.Sets != re.Sets || rs.Throughput != re.Throughput || rs.MaxLatency != re.MaxLatency {
		t.Errorf("exact-fold fields differ: exact %+v, sketch %+v", re, rs)
	}
	relErr := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(a, b) }
	if relErr(re.Latency, rs.Latency) > 0.07 {
		t.Errorf("mean latency: exact %g, sketch %g", re.Latency, rs.Latency)
	}
	for _, q := range []struct {
		name   string
		ex, sk float64
	}{{"p50", re.LatencyP50, rs.LatencyP50}, {"p99", re.LatencyP99, rs.LatencyP99}} {
		if !metrics.SameBin(q.ex, q.sk) && relErr(q.ex, q.sk) > 0.07 {
			t.Errorf("%s: exact %g, sketch %g — more than one bin apart", q.name, q.ex, q.sk)
		}
	}
}

// TestSketchModeReleasesInFlightEntries pins the O(in-flight) memory claim:
// completed sets leave the injection map.
func TestSketchModeReleasesInFlightEntries(t *testing.T) {
	s := NewSketchStream()
	for i := 0; i < 100; i++ {
		s.Inject(i, float64(i))
	}
	for i := 0; i < 90; i++ {
		s.Complete(i, float64(i)+1)
	}
	if got := s.InFlight(); got != 10 {
		t.Errorf("InFlight() = %d, want 10", got)
	}
	if got := s.Count(); got != 90 {
		t.Errorf("Count() = %d, want 90", got)
	}
	if !s.Sketched() {
		t.Errorf("Sketched() = false on a sketch stream")
	}
	if sk := s.LatencySketch(); sk.Count != 90 {
		t.Errorf("LatencySketch().Count = %d, want 90", sk.Count)
	}
}

// TestSketchModeDoubleCompletePanics: the exactly-once contract is enforced,
// not silently miscounted.
func TestSketchModeDoubleCompletePanics(t *testing.T) {
	s := NewSketchStream()
	s.Inject(0, 1)
	s.Complete(0, 2)
	defer func() {
		if recover() == nil {
			t.Errorf("second Complete did not panic")
		}
	}()
	s.Complete(0, 3)
}

// TestSketchModeEmptyAndSingle covers the throughput conventions in sketch
// mode.
func TestSketchModeEmptyAndSingle(t *testing.T) {
	if r := NewSketchStream().Summarize(); r.Sets != 0 || !r.Sketched {
		t.Errorf("empty sketch stream: %+v", r)
	}
	s := NewSketchStream()
	s.Inject(0, 0)
	s.Complete(0, 2)
	r := s.Summarize()
	if r.Sets != 1 || r.MaxLatency != 2 {
		t.Errorf("single-set sketch result: %+v", r)
	}
	if math.Abs(r.Throughput*r.Latency-1) > 0.07 {
		t.Errorf("single-set convention broken: throughput %g, latency %g", r.Throughput, r.Latency)
	}
}
