package stats

import (
	"math"
	"strings"
	"testing"
)

func TestEmptyStream(t *testing.T) {
	s := NewStream()
	r := s.Summarize()
	if r.Sets != 0 || r.Throughput != 0 || r.Latency != 0 {
		t.Errorf("empty stream summary = %+v", r)
	}
}

func TestSingleSet(t *testing.T) {
	s := NewStream()
	s.Inject(0, 1.0)
	s.Complete(0, 1.5)
	r := s.Summarize()
	if r.Sets != 1 {
		t.Errorf("sets = %d", r.Sets)
	}
	if math.Abs(r.Latency-0.5) > 1e-12 {
		t.Errorf("latency = %g", r.Latency)
	}
	if math.Abs(r.Throughput-2.0) > 1e-12 {
		t.Errorf("throughput = %g (1/latency expected)", r.Throughput)
	}
}

func TestSteadyStateThroughput(t *testing.T) {
	s := NewStream()
	// Sets complete every 0.1s; latency is 0.3s each.
	for i := 0; i < 10; i++ {
		inj := float64(i) * 0.1
		s.Inject(i, inj)
		s.Complete(i, inj+0.3)
	}
	r := s.Summarize()
	if math.Abs(r.Throughput-10.0) > 1e-9 {
		t.Errorf("throughput = %g, want 10", r.Throughput)
	}
	if math.Abs(r.Latency-0.3) > 1e-12 {
		t.Errorf("latency = %g, want 0.3", r.Latency)
	}
	if math.Abs(r.MaxLatency-0.3) > 1e-12 {
		t.Errorf("max latency = %g", r.MaxLatency)
	}
}

// TestOneBatchStreamThroughput is the regression test for the degenerate
// completion span: a multi-set stream whose sets all complete at the same
// virtual instant (e.g. replicated modules finishing together) used to fall
// back to the single-set rate 1/Latency, under-reporting throughput by up
// to n×. The n-based accounting must credit every delivered set.
func TestOneBatchStreamThroughput(t *testing.T) {
	s := NewStream()
	const n = 8
	for i := 0; i < n; i++ {
		s.Inject(i, 0)
		s.Complete(i, 0.5) // all complete in one batch
	}
	r := s.Summarize()
	if r.Sets != n {
		t.Fatalf("sets = %d, want %d", r.Sets, n)
	}
	if math.Abs(r.Latency-0.5) > 1e-12 {
		t.Errorf("latency = %g, want 0.5", r.Latency)
	}
	want := float64(n) / 0.5 // 16 sets/s, not the single-set 2 sets/s
	if math.Abs(r.Throughput-want) > 1e-12 {
		t.Errorf("throughput = %g, want %g (n/latency for a one-batch stream)", r.Throughput, want)
	}
}

// TestSingleSetConvention pins the documented n==1 convention separately
// from the degenerate-span case: one set in one latency.
func TestSingleSetConvention(t *testing.T) {
	s := NewStream()
	s.Inject(0, 3.0)
	s.Complete(0, 3.25)
	r := s.Summarize()
	if math.Abs(r.Throughput-4.0) > 1e-12 {
		t.Errorf("single-set throughput = %g, want 1/latency = 4", r.Throughput)
	}
}

func TestInjectKeepsEarliest(t *testing.T) {
	s := NewStream()
	s.Inject(0, 2.0)
	s.Inject(0, 1.0)
	s.Inject(0, 3.0)
	s.Complete(0, 4.0)
	r := s.Summarize()
	if math.Abs(r.Latency-3.0) > 1e-12 {
		t.Errorf("latency = %g, want 3 (earliest injection)", r.Latency)
	}
}

func TestCompleteKeepsLatest(t *testing.T) {
	s := NewStream()
	s.Inject(0, 0)
	s.Complete(0, 1.0)
	s.Complete(0, 2.0)
	s.Complete(0, 1.5)
	r := s.Summarize()
	if math.Abs(r.Latency-2.0) > 1e-12 {
		t.Errorf("latency = %g, want 2 (latest completion)", r.Latency)
	}
}

func TestCompletionWithoutInjectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStream()
	s.Complete(0, 1.0)
	s.Summarize()
}

func TestNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStream()
	s.Inject(0, 2.0)
	s.Complete(0, 1.0)
	s.Summarize()
}

func TestCount(t *testing.T) {
	s := NewStream()
	s.Inject(0, 0)
	s.Inject(1, 0)
	s.Complete(0, 1)
	if s.Count() != 1 {
		t.Errorf("count = %d", s.Count())
	}
}

func TestResultString(t *testing.T) {
	r := Result{Sets: 5, Throughput: 2.5, Latency: 0.4, MaxLatency: 0.5}
	str := r.String()
	if !strings.Contains(str, "5 sets") || !strings.Contains(str, "2.5") {
		t.Errorf("String() = %q", str)
	}
}

// TestSummarizeIsDeterministic: Latency is a float sum, and float addition
// is order-sensitive at the ulp, so Summarize must visit sets in a fixed
// order. Pre-fix it ranged over a map (randomized order) and two calls on
// the same stream could return latencies differing in the last bit.
func TestSummarizeIsDeterministic(t *testing.T) {
	s := NewStream()
	for i := 0; i < 24; i++ {
		s.Inject(i, 0)
		// Latencies spanning many magnitudes make the sum maximally
		// sensitive to accumulation order.
		s.Complete(i, 1.0/float64(3*i+1)+float64(i%5)*1e9)
	}
	want := s.Summarize()
	for trial := 0; trial < 100; trial++ {
		if got := s.Summarize(); got != want {
			t.Fatalf("trial %d: Summarize not deterministic: %+v vs %+v", trial, got, want)
		}
	}
}
