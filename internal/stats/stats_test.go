package stats

import (
	"math"
	"strings"
	"testing"
)

func TestEmptyStream(t *testing.T) {
	s := NewStream()
	r := s.Summarize()
	if r.Sets != 0 || r.Throughput != 0 || r.Latency != 0 {
		t.Errorf("empty stream summary = %+v", r)
	}
}

func TestSingleSet(t *testing.T) {
	s := NewStream()
	s.Inject(0, 1.0)
	s.Complete(0, 1.5)
	r := s.Summarize()
	if r.Sets != 1 {
		t.Errorf("sets = %d", r.Sets)
	}
	if math.Abs(r.Latency-0.5) > 1e-12 {
		t.Errorf("latency = %g", r.Latency)
	}
	if math.Abs(r.Throughput-2.0) > 1e-12 {
		t.Errorf("throughput = %g (1/latency expected)", r.Throughput)
	}
}

func TestSteadyStateThroughput(t *testing.T) {
	s := NewStream()
	// Sets complete every 0.1s; latency is 0.3s each.
	for i := 0; i < 10; i++ {
		inj := float64(i) * 0.1
		s.Inject(i, inj)
		s.Complete(i, inj+0.3)
	}
	r := s.Summarize()
	if math.Abs(r.Throughput-10.0) > 1e-9 {
		t.Errorf("throughput = %g, want 10", r.Throughput)
	}
	if math.Abs(r.Latency-0.3) > 1e-12 {
		t.Errorf("latency = %g, want 0.3", r.Latency)
	}
	if math.Abs(r.MaxLatency-0.3) > 1e-12 {
		t.Errorf("max latency = %g", r.MaxLatency)
	}
}

func TestInjectKeepsEarliest(t *testing.T) {
	s := NewStream()
	s.Inject(0, 2.0)
	s.Inject(0, 1.0)
	s.Inject(0, 3.0)
	s.Complete(0, 4.0)
	r := s.Summarize()
	if math.Abs(r.Latency-3.0) > 1e-12 {
		t.Errorf("latency = %g, want 3 (earliest injection)", r.Latency)
	}
}

func TestCompleteKeepsLatest(t *testing.T) {
	s := NewStream()
	s.Inject(0, 0)
	s.Complete(0, 1.0)
	s.Complete(0, 2.0)
	s.Complete(0, 1.5)
	r := s.Summarize()
	if math.Abs(r.Latency-2.0) > 1e-12 {
		t.Errorf("latency = %g, want 2 (latest completion)", r.Latency)
	}
}

func TestCompletionWithoutInjectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStream()
	s.Complete(0, 1.0)
	s.Summarize()
}

func TestNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStream()
	s.Inject(0, 2.0)
	s.Complete(0, 1.0)
	s.Summarize()
}

func TestCount(t *testing.T) {
	s := NewStream()
	s.Inject(0, 0)
	s.Inject(1, 0)
	s.Complete(0, 1)
	if s.Count() != 1 {
		t.Errorf("count = %d", s.Count())
	}
}

func TestResultString(t *testing.T) {
	r := Result{Sets: 5, Throughput: 2.5, Latency: 0.4, MaxLatency: 0.5}
	str := r.String()
	if !strings.Contains(str, "5 sets") || !strings.Contains(str, "2.5") {
		t.Errorf("String() = %q", str)
	}
}
