package skeleton

// The what-if causal profiler: COZ-style virtual speedups evaluated
// analytically on the skeleton. For every span that owns local time the
// report answers "if this span were k times faster, how much would the
// *makespan* improve?" — which is exactly what a critical-path breakdown
// cannot answer, because accelerating an off-path span gains nothing and
// accelerating an on-path span gains less than its local time once the path
// shifts elsewhere. Alpha/beta/flop sensitivity curves re-cost the whole run
// under scaled machine parameters, locating the regime (latency-, bandwidth-
// or compute-bound) the mapping sits in.

import (
	"fmt"
	"io"
	"sort"

	"fxpar/internal/machine"
)

// WhatIfRow is one span's virtual-speedup outcomes.
type WhatIfRow struct {
	// Label is the span label ("(untracked)" for time outside every span).
	Label string
	// Local is the total local time (compute, io, send overhead, summed
	// over all processors) owned by the span — the naive upper bound on any
	// gain from accelerating it.
	Local float64
	// Gains[i] is the makespan reduction when the span runs Factors[i]
	// times faster.
	Gains []float64
}

// WhatIfReport ranks virtual span speedups by their makespan gain.
type WhatIfReport struct {
	// Baseline is the re-costed makespan at recorded parameters (equal to
	// the recorded makespan by the determinism guarantee).
	Baseline float64
	// Factors are the evaluated speedup factors, ascending.
	Factors []float64
	// Rows are sorted by the gain at the largest factor, descending (ties
	// by label).
	Rows []WhatIfRow
}

// untrackedLabel names time outside every span, matching the critical-path
// report's convention.
const untrackedLabel = "(untracked)"

// localBySpan sums owned local duration (compute, io, send overhead) per
// span label; the empty owner aggregates under "(untracked)".
func (s *Skeleton) localBySpan() map[string]float64 {
	out := map[string]float64{}
	for _, ops := range s.Procs {
		for _, op := range ops {
			switch op.Kind {
			case machine.EvCompute, machine.EvSend, machine.EvIO:
			default:
				continue
			}
			if op.Dur == 0 {
				continue
			}
			label := untrackedLabel
			if op.Span >= 0 {
				label = s.Labels[op.Span]
			}
			out[label] += op.Dur
		}
	}
	return out
}

// WhatIf evaluates every owning span at each speedup factor. Factors must
// be > 1 for a gain to be meaningful, but any positive factor is accepted
// (factors < 1 model slowdowns). Only spans that own local time are
// evaluated — a span with no local time cannot be sped up.
func (s *Skeleton) WhatIf(factors []float64) (*WhatIfReport, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("skeleton: WhatIf needs at least one factor")
	}
	baseline, err := s.Recost(Params{})
	if err != nil {
		return nil, err
	}
	local := s.localBySpan()
	labels := make([]string, 0, len(local))
	for l := range local {
		if l == untrackedLabel {
			continue // not addressable by a span speedup
		}
		labels = append(labels, l)
	}
	sort.Strings(labels)
	rep := &WhatIfReport{Baseline: baseline, Factors: append([]float64(nil), factors...)}
	sort.Float64s(rep.Factors)
	for _, l := range labels {
		row := WhatIfRow{Label: l, Local: local[l], Gains: make([]float64, len(rep.Factors))}
		for i, k := range rep.Factors {
			mk, err := s.Recost(Params{SpanSpeedup: map[string]float64{l: k}})
			if err != nil {
				return nil, err
			}
			row.Gains[i] = baseline - mk
		}
		rep.Rows = append(rep.Rows, row)
	}
	last := len(rep.Factors) - 1
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Gains[last] != rep.Rows[j].Gains[last] {
			return rep.Rows[i].Gains[last] > rep.Rows[j].Gains[last]
		}
		return rep.Rows[i].Label < rep.Rows[j].Label
	})
	return rep, nil
}

// WriteTable prints the ranked what-if table in a fixed, deterministic text
// format: one row per span, one gain column per factor.
func (r *WhatIfReport) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "what-if: makespan %.6f s at recorded parameters; gain from speeding up one span\n", r.Baseline)
	wl := len("span")
	for _, row := range r.Rows {
		if len(row.Label) > wl {
			wl = len(row.Label)
		}
	}
	fmt.Fprintf(w, "%-*s %12s", wl, "span", "local(s)")
	for _, k := range r.Factors {
		fmt.Fprintf(w, " %11s", fmt.Sprintf("x%.2f", k))
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-*s %12.6f", wl, row.Label, row.Local)
		for _, g := range row.Gains {
			fmt.Fprintf(w, " %11.6f", g)
		}
		if r.Baseline > 0 && len(row.Gains) > 0 {
			fmt.Fprintf(w, "  (%.1f%%)", 100*row.Gains[len(row.Gains)-1]/r.Baseline)
		}
		fmt.Fprintln(w)
	}
}

// SensPoint is one machine-parameter scaling and its re-costed makespan.
type SensPoint struct {
	Scale    float64
	Makespan float64
}

// Sensitivity holds makespan curves under scaled machine parameters.
type Sensitivity struct {
	// Alpha scales the per-message latency, Beta the per-byte time, Flop
	// the flop *rate* (scale 2 = twice as fast a CPU).
	Alpha, Beta, Flop []SensPoint
}

// Sensitivity re-costs the run with each of alpha, beta and flop rate
// scaled by every factor in scales, one parameter at a time.
func (s *Skeleton) Sensitivity(scales []float64) (*Sensitivity, error) {
	out := &Sensitivity{}
	sorted := append([]float64(nil), scales...)
	sort.Float64s(sorted)
	for _, sc := range sorted {
		if !(sc > 0) {
			return nil, fmt.Errorf("skeleton: sensitivity scale must be positive, got %g", sc)
		}
		ca := s.Cost
		ca.Alpha *= sc
		mk, err := s.Recost(Params{Cost: &ca})
		if err != nil {
			return nil, err
		}
		out.Alpha = append(out.Alpha, SensPoint{sc, mk})

		cb := s.Cost
		cb.Beta *= sc
		if mk, err = s.Recost(Params{Cost: &cb}); err != nil {
			return nil, err
		}
		out.Beta = append(out.Beta, SensPoint{sc, mk})

		cf := s.Cost
		cf.FlopRate *= sc
		if mk, err = s.Recost(Params{Cost: &cf}); err != nil {
			return nil, err
		}
		out.Flop = append(out.Flop, SensPoint{sc, mk})
	}
	return out, nil
}

// WriteCurves prints the sensitivity curves as one row per scale.
func (sv *Sensitivity) WriteCurves(w io.Writer) {
	fmt.Fprintf(w, "sensitivity: makespan under scaled machine parameters (one at a time)\n")
	fmt.Fprintf(w, "%8s %14s %14s %14s\n", "scale", "alpha*s", "beta*s", "floprate*s")
	for i := range sv.Alpha {
		fmt.Fprintf(w, "%8.2f %14.6f %14.6f %14.6f\n",
			sv.Alpha[i].Scale, sv.Alpha[i].Makespan, sv.Beta[i].Makespan, sv.Flop[i].Makespan)
	}
}
