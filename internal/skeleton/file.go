package skeleton

// Canonical content-keyed serialization, following the internal/mapping memo
// conventions: a deterministic byte encoding, an FNV-64a content key stored
// inside the file and verified on read (so corruption and hand edits fail
// loudly), and temp-file + rename writes. Identical runs — across engines,
// worker counts and hosts — produce byte-identical files, which makes
// skeletons cacheable (key-addressed) and diffable (line-oriented ops).
//
// Each op serializes to one compact string: the kind name followed by
// key=value tokens in a fixed order, with zero/absent fields omitted under a
// single deterministic rule. Floats use the shortest round-tripping
// representation, so decode(encode(s)) == s exactly.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"

	"fxpar/internal/fsatomic"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// FormatVersion identifies the skeleton file schema.
const FormatVersion = 1

// skelFile is the JSON schema of a serialized skeleton.
type skelFile struct {
	Format int    `json:"format"`
	Key    string `json:"key"`
	P      int    `json:"p"`
	// Cost is the recorded cost model; float64 fields round-trip exactly
	// through encoding/json's shortest-representation formatting.
	Cost     sim.CostModel `json:"cost"`
	Chaos    string        `json:"chaos,omitempty"`
	Makespan float64       `json:"makespan"`
	Ops      int           `json:"ops"`
	Labels   []string      `json:"labels"`
	Procs    [][]string    `json:"procs"`
}

// ftoa formats a float with the shortest representation that parses back to
// the identical bits.
func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatOp renders one op as its canonical token string.
func formatOp(op Op) string {
	var b strings.Builder
	b.WriteString(op.Kind.String())
	if op.Dur != 0 {
		b.WriteString(" d=")
		b.WriteString(ftoa(op.Dur))
	}
	if op.Peer >= 0 {
		b.WriteString(" p=")
		b.WriteString(strconv.Itoa(op.Peer))
	}
	if op.Bytes != 0 {
		b.WriteString(" b=")
		b.WriteString(strconv.Itoa(op.Bytes))
	}
	if op.PairSeq != 0 {
		b.WriteString(" q=")
		b.WriteString(strconv.FormatInt(op.PairSeq, 10))
	}
	if op.Wire != 0 {
		b.WriteString(" w=")
		b.WriteString(ftoa(op.Wire))
	}
	if op.Label >= 0 {
		b.WriteString(" l=")
		b.WriteString(strconv.Itoa(op.Label))
	}
	if op.Depth != 0 {
		b.WriteString(" e=")
		b.WriteString(strconv.Itoa(op.Depth))
	}
	if op.Span >= 0 {
		b.WriteString(" s=")
		b.WriteString(strconv.Itoa(op.Span))
	}
	return b.String()
}

// kindByName maps EventKind.String() names back to kinds.
var kindByName = func() map[string]machine.EventKind {
	m := map[string]machine.EventKind{}
	for _, k := range []machine.EventKind{
		machine.EvCompute, machine.EvSend, machine.EvWait, machine.EvIO,
		machine.EvRecv, machine.EvSpanBegin, machine.EvSpanEnd,
		machine.EvFault, machine.EvTimeout, machine.EvRetry,
	} {
		m[k.String()] = k
	}
	return m
}()

// parseOp parses a canonical op token string.
func parseOp(s string) (Op, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Op{}, fmt.Errorf("skeleton: empty op")
	}
	kind, ok := kindByName[fields[0]]
	if !ok {
		return Op{}, fmt.Errorf("skeleton: unknown op kind %q", fields[0])
	}
	op := Op{Kind: kind, Peer: -1, Label: -1, Span: -1}
	for _, tok := range fields[1:] {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Op{}, fmt.Errorf("skeleton: malformed op token %q", tok)
		}
		var err error
		switch key {
		case "d":
			op.Dur, err = strconv.ParseFloat(val, 64)
		case "p":
			op.Peer, err = strconv.Atoi(val)
		case "b":
			op.Bytes, err = strconv.Atoi(val)
		case "q":
			op.PairSeq, err = strconv.ParseInt(val, 10, 64)
		case "w":
			op.Wire, err = strconv.ParseFloat(val, 64)
		case "l":
			op.Label, err = strconv.Atoi(val)
		case "e":
			op.Depth, err = strconv.Atoi(val)
		case "s":
			op.Span, err = strconv.Atoi(val)
		default:
			return Op{}, fmt.Errorf("skeleton: unknown op field %q", key)
		}
		if err != nil {
			return Op{}, fmt.Errorf("skeleton: bad op token %q: %v", tok, err)
		}
	}
	return op, nil
}

// encode marshals the skeleton with the given content key ("" while
// computing the key itself).
func (s *Skeleton) encode(key string) ([]byte, error) {
	f := skelFile{
		Format: FormatVersion, Key: key, P: s.P, Cost: s.Cost, Chaos: s.Chaos,
		Makespan: s.Makespan, Ops: s.Ops(), Labels: s.Labels,
		Procs: make([][]string, len(s.Procs)),
	}
	if f.Labels == nil {
		f.Labels = []string{}
	}
	for i, ops := range s.Procs {
		rows := make([]string, len(ops))
		for j, op := range ops {
			rows[j] = formatOp(op)
		}
		f.Procs[i] = rows
	}
	out, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Key returns the skeleton's content key, "fxskel-" plus the FNV-64a hash of
// the canonical encoding. Identical runs have identical keys.
func (s *Skeleton) Key() (string, error) {
	raw, err := s.encode("")
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("fxskel-%016x", h.Sum64()), nil
}

// Encode returns the canonical serialized form, content key included.
func (s *Skeleton) Encode() ([]byte, error) {
	key, err := s.Key()
	if err != nil {
		return nil, err
	}
	return s.encode(key)
}

// Decode parses a serialized skeleton and verifies its content key.
func Decode(data []byte) (*Skeleton, error) {
	var f skelFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("skeleton: decode: %v", err)
	}
	if f.Format != FormatVersion {
		return nil, fmt.Errorf("skeleton: unsupported format %d (want %d)", f.Format, FormatVersion)
	}
	s := &Skeleton{
		P: f.P, Cost: f.Cost, Chaos: f.Chaos, Makespan: f.Makespan,
		Labels: f.Labels, Procs: make([][]Op, len(f.Procs)),
	}
	for i, rows := range f.Procs {
		ops := make([]Op, len(rows))
		for j, row := range rows {
			op, err := parseOp(row)
			if err != nil {
				return nil, err
			}
			if op.Label >= len(s.Labels) || op.Span >= len(s.Labels) {
				return nil, fmt.Errorf("skeleton: op references label out of range: %q", row)
			}
			ops[j] = op
		}
		s.Procs[i] = ops
	}
	key, err := s.Key()
	if err != nil {
		return nil, err
	}
	if key != f.Key {
		return nil, fmt.Errorf("skeleton: content key mismatch (file says %s, content hashes to %s): corrupted or hand-edited", f.Key, key)
	}
	return s, nil
}

// WriteFile writes the canonical encoding to path via a temp file created
// in path's own directory + rename (fsatomic), so a crashed writer never
// leaves a torn skeleton behind and concurrent writers stay atomic.
func (s *Skeleton) WriteFile(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(path, data)
}

// ReadFile reads and verifies a serialized skeleton.
func ReadFile(path string) (*Skeleton, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
