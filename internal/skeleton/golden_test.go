package skeleton_test

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden skeleton snapshots")

// goldenProgram is a small hand-rolled SPMD pipeline with spans, exchanges
// and io — stable on purpose, so the golden file only changes when the
// serialization format or the capture semantics change.
func goldenProgram(p *machine.Proc) {
	switch p.ID() {
	case 0:
		p.IO(1 << 12)
		for i := 0; i < 3; i++ {
			p.BeginSpan("stage:a")
			p.Compute(2e6)
			p.EndSpan()
			p.Send(1, nil, 1024)
		}
	case 1:
		for i := 0; i < 3; i++ {
			p.Recv(0)
			p.BeginSpan("stage:b")
			p.Compute(5e5)
			p.BeginSpan("stage:b:inner")
			p.Compute(1e5)
			p.EndSpan()
			p.EndSpan()
			p.Send(2, nil, 256)
		}
	case 2:
		for i := 0; i < 3; i++ {
			p.Recv(1)
			p.Compute(1e5) // untracked tail work
		}
		p.IO(768)
	}
}

// TestGoldenSkeleton pins the canonical serialized form. Run with -update to
// regenerate after an intentional format change; any unintentional change to
// the encoding, the label interning order, the op token grammar or the
// content key breaks this test.
func TestGoldenSkeleton(t *testing.T) {
	cost := sim.Paragon()
	col := &trace.Collector{}
	m := machine.New(3, cost)
	m.SetTracer(col)
	m.Run(goldenProgram)
	sk, err := skeleton.FromEvents(cost, col.Events())
	if err != nil {
		t.Fatalf("skeleton.FromEvents: %v", err)
	}
	got, err := sk.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	const path = "testdata/golden.fxskel"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("serialized skeleton deviates from golden snapshot (%d vs %d bytes); "+
			"if the format change is intentional, regenerate with -update.\ngot:\n%s", len(got), len(want), got)
	}

	// The golden file must itself decode, key-verify and re-cost to its
	// recorded makespan.
	dec, err := skeleton.Decode(want)
	if err != nil {
		t.Fatalf("golden decode: %v", err)
	}
	mk, err := dec.Recost(skeleton.Params{})
	if err != nil {
		t.Fatalf("golden recost: %v", err)
	}
	if mk != dec.Makespan {
		t.Fatalf("golden skeleton re-costs to %v, recorded %v", mk, dec.Makespan)
	}
}
