// Package skeleton captures a traced run as a *communication skeleton*: the
// dependence DAG of compute amounts, message edges (bytes, src/dst, per-pair
// FIFO sequence), and span boundaries, stripped of absolute timestamps. A
// skeleton is the machine-independent shape of a run — what the program did,
// not when — and it can be re-costed analytically under perturbed machine
// parameters (alpha, beta, flop rate) or per-span virtual speedups without
// re-simulating, which is the foundation of the what-if causal profiler
// (fxprof -whatif) and of regression attribution (fxbench -compare).
//
// The capture is exact in a strong sense: every clock advance the machine
// made is recorded as the cost model produced it (machine.Event.Dur and
// .Wire carry the pre-rounding increments), so re-costing a skeleton at its
// recorded parameters reproduces the recorded event stream, makespan and
// critical path *bitwise* — see Recost and the determinism tests.
//
// Capture paths:
//   - FromEvents folds a completed trace (e.g. trace.Collector.Events()).
//   - Sink is a machine.Tracer that accumulates the same information from a
//     live run; combine with other tracers via trace.Tee.
//
// Both paths produce identical skeletons for the same run.
package skeleton

import (
	"fmt"
	"sort"
	"sync"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// Op is one node of the dependence DAG: a single operation of one
// processor's program, in program order. Waits are not stored — blocking is
// a *consequence* of the DAG (a receive waits exactly when its message
// arrives after the local clock), so re-costing derives waits instead of
// replaying them.
type Op struct {
	// Kind is the operation class (EvCompute, EvSend, EvRecv, EvIO,
	// EvTimeout, EvFault, EvRetry, EvSpanBegin, EvSpanEnd; never EvWait).
	Kind machine.EventKind
	// Dur is the charged local duration exactly as the machine's cost model
	// produced it (machine.Event.Dur): compute time, io time, send injection
	// overhead, or a receive-timeout increment. Zero for markers and
	// receives.
	Dur float64
	// Peer is the other processor of a send/recv/timeout/retry/fault op
	// (-1 when there is none).
	Peer int
	// Bytes is the payload size of a send/recv op or the byte count of an
	// io op.
	Bytes int
	// PairSeq is the per-(src,dst) FIFO sequence number of the message a
	// send or recv op refers to; (src, dst, PairSeq) identifies the edge.
	PairSeq int64
	// Wire is the full recorded wire latency of a send op: alpha +
	// bytes*beta plus per-hop and fault-injected components
	// (machine.Event.Wire). The message arrives at the send's local end
	// time plus Wire.
	Wire float64
	// Label indexes Skeleton.Labels for span markers (the span name) and
	// fault markers (the fault name); -1 otherwise.
	Label int
	// Depth is the nesting depth of a span marker (0 = outermost).
	Depth int
	// Span indexes Skeleton.Labels with the innermost named span owning
	// this op (-1 outside every span). Span-begin markers are owned by the
	// enclosing parent; span-end markers by the span they close — the same
	// attribution trace.Timeline uses.
	Span int
}

// Skeleton is the captured dependence DAG of one run.
type Skeleton struct {
	// P is the number of processors (highest processor id observed + 1).
	P int
	// Cost is the machine cost model the run was recorded under; re-costing
	// at exactly these parameters reproduces the run bitwise.
	Cost sim.CostModel
	// Chaos is the fault-injection plan label of the recorded run
	// ("seed:profile", "" for a healthy run). Informational: injected
	// delays and retries are already baked into Dur/Wire and the op
	// sequence.
	Chaos string
	// Labels interns every span and fault label, in first-use order by
	// ascending processor then program order — a deterministic order, so
	// identical runs produce identical skeletons.
	Labels []string
	// Procs[p] is processor p's program, in program order.
	Procs [][]Op
	// Makespan is the recorded run's makespan (max event end time).
	Makespan float64
}

// Ops returns the total number of DAG nodes.
func (s *Skeleton) Ops() int {
	n := 0
	for _, ops := range s.Procs {
		n += len(ops)
	}
	return n
}

// FromEvents folds a complete trace into a skeleton. cost must be the model
// the run executed under (machine.Machine.Cost()). The input is not
// modified; any event order is accepted.
func FromEvents(cost sim.CostModel, evs []machine.Event) (*Skeleton, error) {
	sorted := append([]machine.Event(nil), evs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Proc != sorted[j].Proc {
			return sorted[i].Proc < sorted[j].Proc
		}
		return sorted[i].Seq < sorted[j].Seq
	})
	return fold(cost, sorted)
}

// fold builds a skeleton from events already in (proc, seq) order.
func fold(cost sim.CostModel, evs []machine.Event) (*Skeleton, error) {
	s := &Skeleton{Cost: cost}
	labelIdx := map[string]int{}
	intern := func(l string) int {
		if l == "" {
			return -1
		}
		if i, ok := labelIdx[l]; ok {
			return i
		}
		i := len(s.Labels)
		s.Labels = append(s.Labels, l)
		labelIdx[l] = i
		return i
	}
	for _, e := range evs {
		if e.Proc+1 > s.P {
			s.P = e.Proc + 1
		}
		if e.End > s.Makespan {
			s.Makespan = e.End
		}
	}
	if s.P == 0 {
		return nil, fmt.Errorf("skeleton: empty trace")
	}
	s.Procs = make([][]Op, s.P)

	var stack []int // open span label indices of the current processor
	lastProc := -1
	var pendingWait *machine.Event
	for i := range evs {
		e := &evs[i]
		if e.Proc != lastProc {
			if pendingWait != nil {
				return nil, fmt.Errorf("skeleton: processor %d trace ends inside a wait", lastProc)
			}
			if len(stack) != 0 {
				return nil, fmt.Errorf("skeleton: processor %d trace ends with %d unclosed span(s)", lastProc, len(stack))
			}
			stack = stack[:0]
			lastProc = e.Proc
		}
		top := -1
		if len(stack) > 0 {
			top = stack[len(stack)-1]
		}
		if pendingWait != nil {
			// machine.Proc.finishRecv records the wait interval and the recv
			// marker back to back; anything else is a malformed trace.
			if e.Kind != machine.EvRecv || e.Peer != pendingWait.Peer {
				return nil, fmt.Errorf("skeleton: processor %d wait (peer %d) not followed by its recv", e.Proc, pendingWait.Peer)
			}
			pendingWait = nil
		}
		op := Op{Kind: e.Kind, Peer: e.Peer, Bytes: e.Bytes, Span: top, Label: -1}
		switch e.Kind {
		case machine.EvWait:
			// Folded away: the matching recv op carries the edge; blocking is
			// re-derived at re-cost time.
			pendingWait = e
			continue
		case machine.EvCompute, machine.EvIO:
			op.Dur = e.Dur
		case machine.EvSend:
			op.Dur, op.Wire, op.PairSeq = e.Dur, e.Wire, e.PairSeq
		case machine.EvRecv:
			op.PairSeq = e.PairSeq
		case machine.EvTimeout:
			op.Dur = e.Dur
		case machine.EvFault, machine.EvRetry:
			op.Label = intern(e.Label)
		case machine.EvSpanBegin:
			op.Label, op.Depth = intern(e.Label), e.Depth
			s.Procs[e.Proc] = append(s.Procs[e.Proc], op)
			stack = append(stack, op.Label)
			continue
		case machine.EvSpanEnd:
			if len(stack) == 0 {
				return nil, fmt.Errorf("skeleton: processor %d span-end without begin", e.Proc)
			}
			stack = stack[:len(stack)-1]
			op.Label, op.Depth, op.Span = intern(e.Label), e.Depth, top
			s.Procs[e.Proc] = append(s.Procs[e.Proc], op)
			continue
		default:
			return nil, fmt.Errorf("skeleton: unknown event kind %v", e.Kind)
		}
		s.Procs[e.Proc] = append(s.Procs[e.Proc], op)
	}
	if pendingWait != nil {
		return nil, fmt.Errorf("skeleton: processor %d trace ends inside a wait", lastProc)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("skeleton: processor %d trace ends with %d unclosed span(s)", lastProc, len(stack))
	}
	return s, nil
}

// sinkShards stripes the Sink's per-processor buffers the same way
// trace.Collector stripes its shards, so concurrent processor goroutines do
// not serialize on one mutex.
const sinkShards = 64

type sinkShard struct {
	mu     sync.Mutex
	byProc map[int][]machine.Event
}

// Sink is a machine.Tracer that captures a skeleton from a live run. It
// buffers events per processor (each processor records its own events in
// program order, so no global sort is needed) and folds them on Skeleton().
// Combine with other tracers via trace.Tee. Safe for concurrent use.
type Sink struct {
	cost   sim.CostModel
	chaos  string
	shards [sinkShards]sinkShard
}

var _ machine.Tracer = (*Sink)(nil)

// NewSink returns a sink capturing a run executed under the given cost
// model. chaos is the fault plan label to stamp on the skeleton ("" for a
// healthy run).
func NewSink(cost sim.CostModel, chaos string) *Sink {
	return &Sink{cost: cost, chaos: chaos}
}

// Record implements machine.Tracer.
func (s *Sink) Record(e machine.Event) {
	proc := e.Proc
	if proc < 0 {
		proc = -proc
	}
	sh := &s.shards[proc%sinkShards]
	sh.mu.Lock()
	if sh.byProc == nil {
		sh.byProc = make(map[int][]machine.Event)
	}
	sh.byProc[e.Proc] = append(sh.byProc[e.Proc], e)
	sh.mu.Unlock()
}

// Skeleton folds the captured events. Call after the run completes; the
// result is identical to FromEvents over the same run's collected trace.
func (s *Sink) Skeleton() (*Skeleton, error) {
	var procs []int
	perProc := map[int][]machine.Event{}
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for pr, evs := range sh.byProc {
			procs = append(procs, pr)
			perProc[pr] = evs
			total += len(evs)
		}
		sh.mu.Unlock()
	}
	sort.Ints(procs)
	ordered := make([]machine.Event, 0, total)
	for _, pr := range procs {
		ordered = append(ordered, perProc[pr]...)
	}
	sk, err := fold(s.cost, ordered)
	if err != nil {
		return nil, err
	}
	sk.Chaos = s.chaos
	return sk, nil
}
