package skeleton

// Regression attribution: when a baseline check fails, diff the baseline
// skeleton against the current one and *name* what moved — which spans
// gained local work, which edges gained wire time, where messages appeared
// or disappeared. All aggregates are virtual-time values, so a diff is
// deterministic and exact.

import (
	"fmt"
	"io"
	"sort"

	"fxpar/internal/machine"
)

// spanAgg is the per-span-label aggregate of one skeleton.
type spanAgg struct {
	Ops   int     // ops owned by the span
	Local float64 // owned compute + io + send overhead
	Msgs  int     // sends owned by the span
	Bytes int64   // payload bytes of those sends
	Wire  float64 // wire time of those sends
}

// aggregate folds a skeleton into per-span-label aggregates.
func aggregate(s *Skeleton) map[string]spanAgg {
	out := map[string]spanAgg{}
	for _, ops := range s.Procs {
		for _, op := range ops {
			label := untrackedLabel
			if op.Span >= 0 {
				label = s.Labels[op.Span]
			}
			a := out[label]
			a.Ops++
			switch op.Kind {
			case machine.EvCompute, machine.EvIO, machine.EvSend:
				a.Local += op.Dur
			}
			if op.Kind == machine.EvSend {
				a.Msgs++
				a.Bytes += int64(op.Bytes)
				a.Wire += op.Wire
			}
			out[label] = a
		}
	}
	return out
}

// SpanDelta is one span label's change between two skeletons. A label
// present in only one side has a zero aggregate on the other.
type SpanDelta struct {
	Label    string
	Old, New spanAgg
}

// changed reports whether anything moved. Virtual values are deterministic,
// so exact comparison is the correct test.
func (d SpanDelta) changed() bool { return d.Old != d.New }

// Magnitude orders deltas by how much virtual time moved.
func (d SpanDelta) Magnitude() float64 {
	m := d.New.Local - d.Old.Local
	if m < 0 {
		m = -m
	}
	w := d.New.Wire - d.Old.Wire
	if w < 0 {
		w = -w
	}
	return m + w
}

// DiffReport names the spans and edges that moved between two skeletons.
type DiffReport struct {
	OldMakespan, NewMakespan float64
	OldOps, NewOps           int
	// Deltas lists only labels whose aggregate changed, sorted by moved
	// virtual time descending (ties by label).
	Deltas []SpanDelta
}

// Identical reports whether the two skeletons agree on makespan and every
// per-span aggregate.
func (d *DiffReport) Identical() bool {
	return len(d.Deltas) == 0 && d.OldMakespan == d.NewMakespan && d.OldOps == d.NewOps
}

// Diff compares two skeletons span by span.
func Diff(old, cur *Skeleton) *DiffReport {
	rep := &DiffReport{
		OldMakespan: old.Makespan, NewMakespan: cur.Makespan,
		OldOps: old.Ops(), NewOps: cur.Ops(),
	}
	oa, ca := aggregate(old), aggregate(cur)
	labels := map[string]bool{}
	for l := range oa {
		labels[l] = true
	}
	for l := range ca {
		labels[l] = true
	}
	for l := range labels {
		d := SpanDelta{Label: l, Old: oa[l], New: ca[l]}
		if d.changed() {
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool {
		if rep.Deltas[i].Magnitude() != rep.Deltas[j].Magnitude() {
			return rep.Deltas[i].Magnitude() > rep.Deltas[j].Magnitude()
		}
		return rep.Deltas[i].Label < rep.Deltas[j].Label
	})
	return rep
}

// WriteReport prints the attribution in a fixed, deterministic text format.
func (d *DiffReport) WriteReport(w io.Writer) {
	if d.Identical() {
		fmt.Fprintln(w, "skeleton diff: identical")
		return
	}
	fmt.Fprintf(w, "skeleton diff: makespan %.6f s -> %.6f s (%+.6f s), %d -> %d ops\n",
		d.OldMakespan, d.NewMakespan, d.NewMakespan-d.OldMakespan, d.OldOps, d.NewOps)
	if len(d.Deltas) == 0 {
		fmt.Fprintln(w, "  (no per-span changes: timing moved without structural change)")
		return
	}
	fmt.Fprintln(w, "  spans that moved (virtual time, exact):")
	for _, dl := range d.Deltas {
		fmt.Fprintf(w, "    %-40s local %+.6f s (%.6f -> %.6f)",
			dl.Label, dl.New.Local-dl.Old.Local, dl.Old.Local, dl.New.Local)
		if dl.Old.Msgs != dl.New.Msgs || dl.Old.Bytes != dl.New.Bytes || dl.Old.Wire != dl.New.Wire {
			fmt.Fprintf(w, "  msgs %d -> %d, bytes %d -> %d, wire %+.6f s",
				dl.Old.Msgs, dl.New.Msgs, dl.Old.Bytes, dl.New.Bytes, dl.New.Wire-dl.Old.Wire)
		}
		if dl.Old.Ops != dl.New.Ops {
			fmt.Fprintf(w, "  ops %d -> %d", dl.Old.Ops, dl.New.Ops)
		}
		fmt.Fprintln(w)
	}
}
