package skeleton_test

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
)

func storeKeyFor(sk *skeleton.Skeleton, chaos string) skeleton.StoreKey {
	return skeleton.StoreKey{
		App:     "ffthist",
		Params:  "N=32,Bins=16",
		Mapping: "m=1/s=4,2,2",
		P:       sk.P,
		Chaos:   chaos,
		Cost:    sk.Cost,
	}
}

// TestStoreRoundTrip covers the three sources: a miss resolved by capture, a
// memory hit in the same store, and a disk hit in a fresh store sharing the
// directory (the cross-process path).
func TestStoreRoundTrip(t *testing.T) {
	sk, _, _ := smallRun(t)
	dir := t.TempDir()
	st := skeleton.NewStore(dir)
	k := storeKeyFor(sk, "")

	if _, _, ok := st.Get(k); ok {
		t.Fatal("empty store reported a hit")
	}
	got, src, err := st.GetOrCapture(k, func() (*skeleton.Skeleton, error) { return sk, nil })
	if err != nil || src != skeleton.SourceCaptured || got != sk {
		t.Fatalf("GetOrCapture miss: got %v source %v err %v", got, src, err)
	}
	if got, src, ok := st.Get(k); !ok || src != skeleton.SourceMemory || got != sk {
		t.Fatalf("second lookup: ok %v source %v", ok, src)
	}

	// A fresh store over the same directory models a second -j worker or a
	// later process: it must hit on disk and serve a byte-identical skeleton.
	st2 := skeleton.NewStore(dir)
	got2, src, ok := st2.Get(k)
	if !ok || src != skeleton.SourceDisk {
		t.Fatalf("fresh store over shared dir: ok %v source %v", ok, src)
	}
	want, err := sk.Encode()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := got2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(want) {
		t.Fatal("disk round-trip altered the skeleton encoding")
	}

	stats := st.Stats()
	if stats.Captured != 1 || stats.Memory != 1 {
		t.Fatalf("stats = %+v, want 1 capture and 1 memory hit", stats)
	}
	if s2 := st2.Stats(); s2.Disk != 1 {
		t.Fatalf("fresh store stats = %+v, want 1 disk hit", s2)
	}
}

// TestStoreChaosIdentity pins the satellite guarantee: a skeleton captured
// under one chaos plan must never be served for another — a different seed or
// profile is a store miss, not a silent wrong-answer hit.
func TestStoreChaosIdentity(t *testing.T) {
	sk, _, _ := smallRun(t) // healthy capture: sk.Chaos == ""
	st := skeleton.NewStore(t.TempDir())

	if err := st.Put(storeKeyFor(sk, ""), sk); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for _, chaos := range []string{"42:flaky", "7:flaky", "42:lossy"} {
		if _, _, ok := st.Get(storeKeyFor(sk, chaos)); ok {
			t.Errorf("healthy skeleton served for chaos plan %q", chaos)
		}
	}

	// Mis-keyed Put: storing a healthy skeleton under a chaos key must fail
	// loudly (the belt-and-suspenders admissibility check), in memory and
	// before anything lands on disk.
	if err := st.Put(storeKeyFor(sk, "42:flaky"), sk); err == nil {
		t.Fatal("Put accepted a skeleton whose chaos stamp contradicts the key")
	}
	if _, _, ok := st.Get(storeKeyFor(sk, "42:flaky")); ok {
		t.Fatal("rejected Put still served on lookup")
	}

	// Same for a cost-model mismatch: key says one machine, skeleton another.
	k := storeKeyFor(sk, "")
	k.Cost.Alpha *= 2
	if err := st.Put(k, sk); err == nil {
		t.Fatal("Put accepted a skeleton whose recorded cost contradicts the key")
	}
}

// TestStoreDiskTamperIsMiss: a corrupted or swapped cache file must read as a
// miss, never as a wrong skeleton.
func TestStoreDiskTamperIsMiss(t *testing.T) {
	sk, _, _ := smallRun(t)
	dir := t.TempDir()
	st := skeleton.NewStore(dir)
	k := storeKeyFor(sk, "")
	if err := st.Put(k, sk); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("cache dir: %v entries, err %v", len(ents), err)
	}
	path := filepath.Join(dir, ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the payload.
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := skeleton.NewStore(dir).Get(k); ok {
		t.Fatal("tampered cache file served as a hit")
	}
}

// TestStoreConcurrentGetOrCapture: concurrent misses on one key run exactly
// one capture — the flight leader's — while every caller still gets an
// admissible skeleton and the store ends up consistent. The gate holds the
// leader's capture open until all callers have launched, so the dedupe is
// exercised with the misses genuinely overlapping.
func TestStoreConcurrentGetOrCapture(t *testing.T) {
	sk, _, _ := smallRun(t)
	st := skeleton.NewStore(t.TempDir())
	k := storeKeyFor(sk, "")

	const callers = 8
	var captures atomic.Int64
	gate := make(chan struct{})
	launched := make(chan struct{}, callers)
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			launched <- struct{}{}
			got, _, err := st.GetOrCapture(k, func() (*skeleton.Skeleton, error) {
				captures.Add(1)
				<-gate
				return sk, nil
			})
			if err != nil {
				errs <- err
				return
			}
			if got.Makespan != sk.Makespan || got.Chaos != sk.Chaos {
				errs <- fmt.Errorf("concurrent caller got a different skeleton")
			}
		}()
	}
	for i := 0; i < callers; i++ {
		<-launched
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := captures.Load(); n != 1 {
		t.Errorf("capture ran %d times across concurrent misses, want exactly 1", n)
	}
	if st.Stats().Captured != 1 {
		t.Errorf("stats report %d captures, want 1", st.Stats().Captured)
	}
	if _, src, ok := st.Get(k); !ok || src != skeleton.SourceMemory {
		t.Fatalf("store not settled after concurrent captures: ok %v source %v", ok, src)
	}
}

// TestRecostRejectsBadParams is the regression test for the Params
// validation seam: non-positive or non-finite machine parameters must come
// back as a typed *ParamError, never as a NaN or Inf makespan.
func TestRecostRejectsBadParams(t *testing.T) {
	sk, _, _ := smallRun(t)
	base := sk.Cost

	cases := []struct {
		name  string
		p     skeleton.Params
		field string
	}{
		{"zero flop rate", skeleton.Params{Cost: func() *sim.CostModel { c := base; c.FlopRate = 0; return &c }()}, "cost.FlopRate"},
		{"negative flop rate", skeleton.Params{Cost: func() *sim.CostModel { c := base; c.FlopRate = -1e6; return &c }()}, "cost.FlopRate"},
		{"NaN flop rate", skeleton.Params{Cost: func() *sim.CostModel { c := base; c.FlopRate = math.NaN(); return &c }()}, "cost.FlopRate"},
		{"Inf flop rate", skeleton.Params{Cost: func() *sim.CostModel { c := base; c.FlopRate = math.Inf(1); return &c }()}, "cost.FlopRate"},
		{"negative alpha", skeleton.Params{Cost: func() *sim.CostModel { c := base; c.Alpha = -1e-6; return &c }()}, "cost.Alpha"},
		{"negative beta", skeleton.Params{Cost: func() *sim.CostModel { c := base; c.Beta = -1e-9; return &c }()}, "cost.Beta"},
		{"NaN beta", skeleton.Params{Cost: func() *sim.CostModel { c := base; c.Beta = math.NaN(); return &c }()}, "cost.Beta"},
		{"negative net scale", skeleton.Params{NetScale: -2}, "netscale"},
		{"NaN net scale", skeleton.Params{NetScale: math.NaN()}, "netscale"},
		{"Inf net scale", skeleton.Params{NetScale: math.Inf(1)}, "netscale"},
		{"NaN speedup", skeleton.Params{SpanSpeedup: map[string]float64{sk.Labels[0]: math.NaN()}}, "speedup:" + sk.Labels[0]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk, err := sk.Recost(tc.p)
			if err == nil {
				t.Fatalf("Recost accepted bad params (makespan %v)", mk)
			}
			var pe *skeleton.ParamError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T (%v), want *skeleton.ParamError", err, err)
			}
			if pe.Field != tc.field {
				t.Errorf("ParamError.Field = %q, want %q", pe.Field, tc.field)
			}
			if pe.Error() == "" || pe.Reason == "" {
				t.Errorf("ParamError not descriptive: %+v", pe)
			}
			// The same rejection must be available pre-flight, without a
			// skeleton, for campaign grid validation.
			if tc.p.Validate() == nil {
				t.Error("Params.Validate accepted what Recost rejected")
			}
		})
	}

	// The zero value stays the identity replay (fxprof's self-check relies
	// on it): NetScale 0 means "unset", not an error.
	if mk, err := sk.Recost(skeleton.Params{}); err != nil || mk != sk.Makespan {
		t.Fatalf("zero-value Params: makespan %v err %v, want identity %v", mk, err, sk.Makespan)
	}
}
