package skeleton

// Analytic re-costing: replay the dependence DAG under perturbed machine
// parameters and per-span virtual speedups, without re-simulating. The
// replay is a deterministic dataflow evaluation — each processor's program
// runs in order, a receive blocks until its edge's arrival time is known,
// and a send publishes its arrival time — so one evaluation is a few
// map operations per message instead of a full engine run.
//
// Exactness. At the recorded parameters every scale factor is exactly 1.0
// and every parameter delta exactly 0.0, both of which are identities under
// IEEE-754 arithmetic, and the replay performs the *same* floating-point
// operations the machine performed (clock' = fl(clock + Dur),
// arrive = fl(sendEnd + Wire)); the re-costed event stream is therefore
// bitwise identical to the recorded one. Under perturbed parameters the
// replay deviates from a real re-simulation only where the recorded control
// flow would have changed (receive timeouts that would have been beaten,
// fault schedules keyed on absolute time) — for healthy runs the DAG is
// parameter-independent and the re-cost matches a real re-run to rounding.
//
// Approximations, by construction:
//   - all EvCompute time scales with the flop-rate ratio, including
//     modelled Elapse phases and local copies;
//   - EvTimeout increments are protocol deadlines and do not scale;
//   - changing PerHop is unsupported (hop counts are folded into Wire).

import (
	"fmt"
	"math"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// Params perturbs a re-cost evaluation. The zero value replays the skeleton
// at its recorded parameters.
type Params struct {
	// Cost, when non-nil, replaces the recorded cost model: alpha and beta
	// shift every edge's wire time by their deltas, FlopRate scales compute
	// time, SendOverhead scales injection time, IORate scales io time.
	Cost *sim.CostModel
	// SpanSpeedup maps a span label to a virtual speedup factor k > 0: the
	// local durations (compute, io, send overhead) of ops whose innermost
	// owning span has that label are divided by k. This is the COZ-style
	// "what if this span were k times faster" experiment.
	SpanSpeedup map[string]float64
	// NetScale, when non-zero and != 1, multiplies every edge's wire time
	// after the alpha/beta adjustment (a uniform network speedup/slowdown).
	// When set it must be positive and finite; zero means "unset" (scale 1).
	NetScale float64
}

// ParamError is the typed error a re-cost evaluation returns for invalid
// parameters: a non-positive or non-finite flop rate, a negative alpha or
// beta, a non-positive net scale or span speedup. Catching these at the
// seam keeps NaN and Inf out of replayed makespans — and out of the
// committed campaign artifacts built from them (BENCH_replay.json).
type ParamError struct {
	// Field names the offending parameter ("cost.FlopRate", "netscale",
	// "speedup:<label>", ...).
	Field string
	// Value is the rejected value.
	Value float64
	// Reason says what the parameter must satisfy.
	Reason string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("skeleton: invalid re-cost parameter %s = %g: %s", e.Field, e.Value, e.Reason)
}

// finite reports whether v is a usable float (not NaN, not an infinity).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// validateCost rejects cost models that would replay into NaN/Inf
// makespans. Stricter than sim.CostModel.Validate: NaN and Inf fields are
// errors here, not merely sign violations.
func validateCost(c *sim.CostModel) *ParamError {
	if !(c.FlopRate > 0) || !finite(c.FlopRate) {
		return &ParamError{Field: "cost.FlopRate", Value: c.FlopRate, Reason: "must be positive and finite"}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"cost.Alpha", c.Alpha}, {"cost.Beta", c.Beta},
		{"cost.SendOverhead", c.SendOverhead}, {"cost.MemByte", c.MemByte},
		{"cost.BarrierAlpha", c.BarrierAlpha}, {"cost.IORate", c.IORate},
		{"cost.PerHop", c.PerHop},
	} {
		if f.v < 0 || !finite(f.v) {
			return &ParamError{Field: f.name, Value: f.v, Reason: "must be non-negative and finite"}
		}
	}
	return nil
}

// Validate checks p without evaluating anything; every re-cost entry point
// performs the same checks, so a caller building campaign grids can reject
// a bad point before spending a capture on it. Span labels are not resolved
// here (that needs a skeleton); only the numeric values are checked.
func (p Params) Validate() error {
	if p.Cost != nil {
		if err := validateCost(p.Cost); err != nil {
			return err
		}
	}
	if p.NetScale != 0 && (!(p.NetScale > 0) || !finite(p.NetScale)) {
		return &ParamError{Field: "netscale", Value: p.NetScale, Reason: "must be positive and finite"}
	}
	for label, k := range p.SpanSpeedup {
		if !(k > 0) || !finite(k) {
			return &ParamError{Field: "speedup:" + label, Value: k, Reason: "must be positive and finite"}
		}
	}
	return nil
}

// Result is one re-cost evaluation.
type Result struct {
	// Makespan is the re-costed run's makespan.
	Makespan float64
	// Events is the full re-costed event stream in (proc, seq) order —
	// directly consumable by trace.ComputeCriticalPath, metrics.FromTrace
	// and every other post-hoc view. Nil unless produced by RecostEvents.
	Events []machine.Event
}

// Recost replays the DAG under p and returns the makespan only — the fast
// path for what-if sweeps.
func (s *Skeleton) Recost(p Params) (float64, error) {
	r, err := s.replay(p, false)
	if err != nil {
		return 0, err
	}
	return r.Makespan, nil
}

// RecostEvents replays the DAG under p and materializes the full re-costed
// event stream.
func (s *Skeleton) RecostEvents(p Params) (*Result, error) {
	return s.replay(p, true)
}

// edgeKey identifies one message edge: the seq-th message through the
// ordered (src, dst) pair.
type edgeKey struct {
	src, dst int
	seq      int64
}

// factors are the precomputed per-class scale factors of one evaluation.
type factors struct {
	compute float64 // old.FlopRate / new.FlopRate
	io      float64 // old.IORate / new.IORate
	send    float64 // new.SendOverhead / old.SendOverhead
	dAlpha  float64 // new.Alpha - old.Alpha
	dBeta   float64 // new.Beta - old.Beta
	net     float64 // NetScale
	span    []float64
}

func (s *Skeleton) factors(p Params) (factors, error) {
	if err := p.Validate(); err != nil {
		return factors{}, err
	}
	old := s.Cost
	cur := old
	if p.Cost != nil {
		cur = *p.Cost
	}
	f := factors{compute: 1, io: 1, send: 1, net: 1}
	if cur.FlopRate != old.FlopRate {
		f.compute = old.FlopRate / cur.FlopRate
	}
	if cur.IORate != old.IORate && old.IORate > 0 && cur.IORate > 0 {
		f.io = old.IORate / cur.IORate
	}
	if cur.SendOverhead != old.SendOverhead && old.SendOverhead > 0 {
		f.send = cur.SendOverhead / old.SendOverhead
	}
	f.dAlpha = cur.Alpha - old.Alpha
	f.dBeta = cur.Beta - old.Beta
	if p.NetScale != 0 {
		f.net = p.NetScale
	}
	if len(p.SpanSpeedup) > 0 {
		f.span = make([]float64, len(s.Labels))
		for i := range f.span {
			f.span[i] = 1
		}
		for label, k := range p.SpanSpeedup {
			idx := -1
			for i, l := range s.Labels {
				if l == label {
					idx = i
					break
				}
			}
			if idx < 0 {
				return factors{}, fmt.Errorf("skeleton: speedup for unknown span %q", label)
			}
			f.span[idx] = k
		}
	}
	return f, nil
}

// local returns the scale factor for a local duration of class factor c
// owned by span index own.
func (f *factors) local(c float64, own int) float64 {
	if f.span != nil && own >= 0 {
		if k := f.span[own]; k != 1 {
			return c / k
		}
	}
	return c
}

// replay evaluates the DAG. Each processor's program advances until it
// blocks on a not-yet-published edge; sends publish arrival times and wake
// the blocked receiver. The schedule is a deterministic FIFO over processor
// ids, and — because the evaluation is pure dataflow — the result is
// schedule-independent anyway.
func (s *Skeleton) replay(p Params, withEvents bool) (*Result, error) {
	f, err := s.factors(p)
	if err != nil {
		return nil, err
	}
	n := len(s.Procs)
	pc := make([]int, n)
	clock := make([]float64, n)
	seq := make([]int64, n)
	var evBuf [][]machine.Event
	if withEvents {
		evBuf = make([][]machine.Event, n)
		for i, ops := range s.Procs {
			evBuf[i] = make([]machine.Event, 0, len(ops)+len(ops)/4)
		}
	}
	arrivals := map[edgeKey]float64{}
	waiting := map[edgeKey]int{}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if len(s.Procs[i]) > 0 {
			ready = append(ready, i)
		}
	}
	emit := func(pr int, e machine.Event) {
		seq[pr]++
		e.Proc, e.Seq = pr, seq[pr]
		if withEvents {
			evBuf[pr] = append(evBuf[pr], e)
		}
	}
	label := func(idx int) string {
		if idx < 0 {
			return ""
		}
		return s.Labels[idx]
	}

	var run func(pr int)
	run = func(pr int) {
		ops := s.Procs[pr]
		for pc[pr] < len(ops) {
			op := &ops[pc[pr]]
			switch op.Kind {
			case machine.EvRecv:
				k := edgeKey{op.Peer, pr, op.PairSeq}
				arrive, ok := arrivals[k]
				if !ok {
					waiting[k] = pr
					return // blocked; the publishing send re-enqueues us
				}
				delete(arrivals, k)
				if arrive > clock[pr] {
					emit(pr, machine.Event{Kind: machine.EvWait, Start: clock[pr],
						End: arrive, Peer: op.Peer, Bytes: op.Bytes})
					clock[pr] = arrive
				}
				emit(pr, machine.Event{Kind: machine.EvRecv, Start: clock[pr], End: clock[pr],
					Peer: op.Peer, Bytes: op.Bytes, PairSeq: op.PairSeq})
			case machine.EvSend:
				d := op.Dur
				if lf := f.local(f.send, op.Span); lf != 1 {
					d *= lf
				}
				w := op.Wire
				if f.dAlpha != 0 {
					w += f.dAlpha
				}
				if f.dBeta != 0 {
					w += float64(op.Bytes) * f.dBeta
				}
				if f.net != 1 {
					w *= f.net
				}
				if w < 0 {
					w = 0
				}
				start := clock[pr]
				end := start + d
				emit(pr, machine.Event{Kind: machine.EvSend, Start: start, End: end,
					Peer: op.Peer, Bytes: op.Bytes, Dur: d, Wire: w, PairSeq: op.PairSeq})
				clock[pr] = end
				k := edgeKey{pr, op.Peer, op.PairSeq}
				arrivals[k] = end + w
				if wpr, ok := waiting[k]; ok {
					delete(waiting, k)
					ready = append(ready, wpr)
				}
			case machine.EvCompute, machine.EvIO:
				c := f.compute
				if op.Kind == machine.EvIO {
					c = f.io
				}
				d := op.Dur
				if lf := f.local(c, op.Span); lf != 1 {
					d *= lf
				}
				start := clock[pr]
				end := start + d
				emit(pr, machine.Event{Kind: op.Kind, Start: start, End: end,
					Peer: -1, Bytes: op.Bytes, Dur: d})
				clock[pr] = end
			case machine.EvTimeout:
				// Protocol deadline: the increment does not scale.
				start := clock[pr]
				end := start + op.Dur
				emit(pr, machine.Event{Kind: machine.EvTimeout, Start: start, End: end,
					Peer: op.Peer, Dur: op.Dur})
				clock[pr] = end
			case machine.EvFault, machine.EvRetry:
				emit(pr, machine.Event{Kind: op.Kind, Start: clock[pr], End: clock[pr],
					Peer: op.Peer, Bytes: op.Bytes, Label: label(op.Label)})
			case machine.EvSpanBegin, machine.EvSpanEnd:
				emit(pr, machine.Event{Kind: op.Kind, Start: clock[pr], End: clock[pr],
					Peer: -1, Label: label(op.Label), Depth: op.Depth})
			default:
				panic(fmt.Sprintf("skeleton: unknown op kind %v", op.Kind))
			}
			pc[pr]++
		}
	}

	for len(ready) > 0 {
		pr := ready[0]
		ready = ready[1:]
		run(pr)
	}
	for i := 0; i < n; i++ {
		if pc[i] < len(s.Procs[i]) {
			op := s.Procs[i][pc[i]]
			return nil, fmt.Errorf("skeleton: replay stuck — processor %d blocked on message %d from %d (malformed or truncated skeleton)",
				i, op.PairSeq, op.Peer)
		}
	}
	res := &Result{}
	for i := 0; i < n; i++ {
		if clock[i] > res.Makespan {
			res.Makespan = clock[i]
		}
	}
	if withEvents {
		total := 0
		for _, b := range evBuf {
			total += len(b)
		}
		res.Events = make([]machine.Event, 0, total)
		for _, b := range evBuf {
			res.Events = append(res.Events, b...)
		}
	}
	return res, nil
}
