package skeleton

// The skeleton store promotes captured skeletons from one-off profiler
// artifacts into a first-class replay backend: a content-addressed cache —
// in-process map plus optional on-disk directory, following the
// internal/mapping table-memo conventions — keyed on everything that
// determines a recorded run's DAG: the application, its parameters, the
// mapping, the machine size, the chaos plan identity, and the recorded cost
// model. Campaign jobs that vary only machine parameters (alpha, beta, flop
// rate, net scale) hit the store and re-cost the stored skeleton
// analytically instead of re-simulating; a miss falls back to one live
// traced run, which populates the store for every job after it.
//
// The chaos plan label is part of the key on purpose: a skeleton captured
// under one fault seed/profile bakes that plan's delays, retries and drops
// into its op stream, so replaying it for a different plan would be a
// silent wrong answer, not an approximation. Different chaos identity ==
// store miss, enforced both by the key string and by a belt-and-suspenders
// check against the stored skeleton's own Chaos stamp on every hit.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fxpar/internal/fsatomic"
	"fxpar/internal/sim"
)

// StoreKey identifies one captured run by content. Two equal keys describe
// byte-identical skeletons (capture is deterministic across engines, worker
// counts and hosts), so skeletons are shareable across campaigns, processes
// and machines.
type StoreKey struct {
	// App names the traced program ("ffthist", "ffthist.stage", "airshed", ...).
	App string
	// Params is a canonical rendering of the application parameters that
	// shape the DAG (data sizes, kernel constants, stage index).
	Params string
	// Mapping is the mapping's canonical string (module/stage split).
	Mapping string
	// P is the machine size the run executed on.
	P int
	// Chaos is the fault plan identity ("seed:profile"; "" for a healthy
	// run). A skeleton captured under one plan is never valid for another:
	// the injected delays, duplicates and retries are part of the DAG.
	Chaos string
	// Cost is the cost model the run was recorded under. Re-costing at
	// exactly this model reproduces the recorded run bitwise; other models
	// are analytic perturbations.
	Cost sim.CostModel
}

// Key renders the canonical content key. CostModel is a flat struct of
// float64 fields, so %+v yields a stable field-name=value rendering.
func (k StoreKey) Key() string {
	return fmt.Sprintf("app=%s|params=%s|mapping=%s|P=%d|chaos=%s|cost=%+v",
		k.App, k.Params, k.Mapping, k.P, k.Chaos, k.Cost)
}

// Source says where a store lookup found (or produced) a skeleton.
type Source int

const (
	// SourceCaptured: the skeleton was captured by a live traced run.
	SourceCaptured Source = iota
	// SourceMemory: in-process hit, no simulation ran.
	SourceMemory
	// SourceDisk: on-disk hit, no simulation ran.
	SourceDisk
)

func (s Source) String() string {
	switch s {
	case SourceCaptured:
		return "captured"
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// StoreStats counts lookups by outcome; a campaign report can cite them to
// show how much simulation the store displaced.
type StoreStats struct {
	Memory   int64 // in-process hits
	Disk     int64 // on-disk hits
	Captured int64 // misses resolved by a live traced run
}

// Store is a content-addressed skeleton cache: an in-process map owned by
// this Store plus an optional on-disk directory shared with concurrent
// processes (temp-in-dir + rename writes, content keys verified on read).
// Safe for concurrent use.
type Store struct {
	dir string
	mem sync.Map // key string -> *Skeleton

	// flight dedupes concurrent GetOrCapture misses on one key: the first
	// caller runs the traced simulation, the rest wait for its skeleton.
	flightMu sync.Mutex
	flight   map[string]*captureCall

	memHits  atomic.Int64
	diskHits atomic.Int64
	captures atomic.Int64
}

// captureCall is one in-flight capture; done closes when the leader's traced
// run finishes (successfully or not).
type captureCall struct {
	done chan struct{}
	sk   *Skeleton
	err  error
}

// NewStore returns a store. dir is the on-disk cache directory; "" keeps
// the store purely in-process.
func NewStore(dir string) *Store { return &Store{dir: dir} }

// Dir returns the on-disk cache directory ("" when in-process only).
func (st *Store) Dir() string {
	if st == nil {
		return ""
	}
	return st.dir
}

// Stats snapshots the lookup counters.
func (st *Store) Stats() StoreStats {
	return StoreStats{
		Memory:   st.memHits.Load(),
		Disk:     st.diskHits.Load(),
		Captured: st.captures.Load(),
	}
}

// storeFile is the on-disk envelope: the store key for collision/staleness
// detection around the canonical (self-keyed) skeleton encoding.
type storeFile struct {
	StoreKey string          `json:"storeKey"`
	Skeleton json.RawMessage `json:"skeleton"`
}

// path maps a store key to its cache file. FNV-64a keeps filenames short;
// the StoreKey field inside the file guards against collisions.
func (st *Store) path(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(st.dir, fmt.Sprintf("fxskel-%016x.json", h.Sum64()))
}

// admissible verifies a skeleton against the key it is stored or served
// under. The Chaos and Cost cross-checks are deliberately redundant with
// the key string: they turn a mis-keyed Put (a caller bug) into a loud
// failure instead of a silent wrong-answer replay.
func admissible(k StoreKey, sk *Skeleton) error {
	if sk.Chaos != k.Chaos {
		return fmt.Errorf("skeleton: store key says chaos %q but skeleton was captured under %q", k.Chaos, sk.Chaos)
	}
	if sk.Cost != k.Cost {
		return fmt.Errorf("skeleton: store key cost model differs from the skeleton's recorded one")
	}
	return nil
}

// Get looks the key up in memory, then on disk. Any disk-side failure —
// file absent, malformed JSON, envelope key mismatch, content-key mismatch,
// chaos/cost stamp mismatch — is a miss.
func (st *Store) Get(k StoreKey) (*Skeleton, Source, bool) {
	key := k.Key()
	if v, ok := st.mem.Load(key); ok {
		st.memHits.Add(1)
		return v.(*Skeleton), SourceMemory, true
	}
	if st.dir == "" {
		return nil, SourceCaptured, false
	}
	data, err := os.ReadFile(st.path(key))
	if err != nil {
		return nil, SourceCaptured, false
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil || f.StoreKey != key {
		return nil, SourceCaptured, false
	}
	sk, err := Decode(f.Skeleton)
	if err != nil || admissible(k, sk) != nil {
		return nil, SourceCaptured, false
	}
	st.mem.Store(key, sk)
	st.diskHits.Add(1)
	return sk, SourceDisk, true
}

// Put stores a captured skeleton under k, in memory always and on disk
// best-effort (a disk write failure never fails the caller — the skeleton
// is still served from memory). A skeleton whose chaos or cost stamp
// contradicts the key is rejected.
func (st *Store) Put(k StoreKey, sk *Skeleton) error {
	if err := admissible(k, sk); err != nil {
		return err
	}
	key := k.Key()
	st.mem.Store(key, sk)
	if st.dir == "" {
		return nil
	}
	inner, err := sk.Encode()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(&storeFile{StoreKey: key, Skeleton: inner}, "", " ")
	if err != nil {
		return err
	}
	// Best-effort, atomic: concurrent campaign workers sharing one cache
	// directory each rename a complete temp file into place.
	_ = fsatomic.WriteFile(st.path(key), append(data, '\n'))
	return nil
}

// GetOrCapture returns the stored skeleton for k, or runs capture — one
// live traced simulation — on a miss and stores its result. Concurrent
// misses on the same key are deduped: exactly one caller captures (the runs
// are deterministic, so this changes no result, only the work); the others
// wait for its skeleton and report SourceMemory.
func (st *Store) GetOrCapture(k StoreKey, capture func() (*Skeleton, error)) (*Skeleton, Source, error) {
	if sk, src, ok := st.Get(k); ok {
		return sk, src, nil
	}
	key := k.Key()
	st.flightMu.Lock()
	if st.flight == nil {
		st.flight = make(map[string]*captureCall)
	}
	if c, ok := st.flight[key]; ok {
		st.flightMu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, SourceCaptured, c.err
		}
		return c.sk, SourceMemory, nil
	}
	c := &captureCall{done: make(chan struct{})}
	st.flight[key] = c
	st.flightMu.Unlock()

	c.sk, c.err = st.captureLocked(k, capture)
	st.flightMu.Lock()
	delete(st.flight, key)
	st.flightMu.Unlock()
	close(c.done)
	if c.err != nil {
		return nil, SourceCaptured, c.err
	}
	return c.sk, SourceCaptured, nil
}

// captureLocked is the flight leader's miss path: re-check the store (an
// earlier leader may have filled it), then run the traced simulation and
// store its skeleton.
func (st *Store) captureLocked(k StoreKey, capture func() (*Skeleton, error)) (*Skeleton, error) {
	if sk, _, ok := st.Get(k); ok {
		return sk, nil
	}
	sk, err := capture()
	if err != nil {
		return nil, err
	}
	if err := st.Put(k, sk); err != nil {
		return nil, err
	}
	st.captures.Add(1)
	return sk, nil
}
