package skeleton_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/trace"
)

// captureFFTHist runs a small FFT-Hist pipeline under a collector and a
// skeleton sink simultaneously and returns both capture paths' views.
func captureFFTHist(t *testing.T, cost sim.CostModel, cfg ffthist.Config, mp ffthist.Mapping) (*skeleton.Skeleton, *skeleton.Sink, []machine.Event) {
	t.Helper()
	col := &trace.Collector{}
	sink := skeleton.NewSink(cost, "")
	m := machine.New(mp.Procs(), cost)
	m.SetTracer(trace.Tee(col, sink))
	ffthist.Run(m, cfg, mp)
	evs := col.Events()
	sk, err := skeleton.FromEvents(cost, evs)
	if err != nil {
		t.Fatalf("skeleton.FromEvents: %v", err)
	}
	return sk, sink, evs
}

func smallRun(t *testing.T) (*skeleton.Skeleton, *skeleton.Sink, []machine.Event) {
	t.Helper()
	return captureFFTHist(t, sim.Paragon(),
		ffthist.Config{N: 32, Sets: 6, Bins: 16},
		ffthist.Mapping{Modules: 1, Stages: []int{4, 2, 2}})
}

// TestRecostIdentity is the determinism guarantee: re-costing a skeleton at
// its recorded parameters reproduces the recorded event stream bitwise, and
// with it the recorded makespan and critical-path breakdown exactly.
func TestRecostIdentity(t *testing.T) {
	sk, _, evs := smallRun(t)

	res, err := sk.RecostEvents(skeleton.Params{})
	if err != nil {
		t.Fatalf("RecostEvents: %v", err)
	}
	recorded := append([]machine.Event(nil), evs...)
	trace.SortEvents(recorded)
	if len(res.Events) != len(recorded) {
		t.Fatalf("replay produced %d events, recorded %d", len(res.Events), len(recorded))
	}
	for i := range recorded {
		if res.Events[i] != recorded[i] {
			t.Fatalf("event %d diverges:\n got %+v\nwant %+v", i, res.Events[i], recorded[i])
		}
	}

	cpRec := trace.ComputeCriticalPath(recorded)
	cpRe := trace.ComputeCriticalPath(res.Events)
	if res.Makespan != sk.Makespan || res.Makespan != cpRec.Makespan {
		t.Fatalf("makespans disagree: replay %v skeleton %v critpath %v",
			res.Makespan, sk.Makespan, cpRec.Makespan)
	}
	var recBuf, reBuf bytes.Buffer
	cpRec.WriteReport(&recBuf)
	cpRe.WriteReport(&reBuf)
	if recBuf.String() != reBuf.String() {
		t.Fatalf("critical-path reports diverge:\nrecorded:\n%s\nreplayed:\n%s", recBuf.String(), reBuf.String())
	}

	mk, err := sk.Recost(skeleton.Params{})
	if err != nil {
		t.Fatalf("Recost: %v", err)
	}
	if mk != sk.Makespan {
		t.Fatalf("fast-path Recost makespan %v != recorded %v", mk, sk.Makespan)
	}
}

// TestSinkMatchesFromEvents: the streaming capture path and the post-hoc fold
// must produce byte-identical skeletons for the same run.
func TestSinkMatchesFromEvents(t *testing.T) {
	sk, sink, _ := smallRun(t)
	fromSink, err := sink.Skeleton()
	if err != nil {
		t.Fatalf("skeleton.Sink.Skeleton: %v", err)
	}
	a, err := sk.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b, err := fromSink.Encode()
	if err != nil {
		t.Fatalf("Encode(sink): %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("capture paths diverge: skeleton.FromEvents %d bytes, skeleton.Sink %d bytes", len(a), len(b))
	}
}

func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d / m
}

// TestPerturbedRecostMatchesResim: for a healthy run the DAG is
// parameter-independent, so an analytic re-cost under perturbed alpha, beta,
// flop rate and io rate must match a full re-simulation at those parameters
// to floating-point rounding.
func TestPerturbedRecostMatchesResim(t *testing.T) {
	cfg := ffthist.Config{N: 32, Sets: 6, Bins: 16}
	mp := ffthist.Mapping{Modules: 1, Stages: []int{4, 2, 2}}
	sk, _, _ := captureFFTHist(t, sim.Paragon(), cfg, mp)

	perturb := []func(c *sim.CostModel){
		func(c *sim.CostModel) { c.Alpha *= 4 },
		func(c *sim.CostModel) { c.Beta *= 8 },
		func(c *sim.CostModel) { c.FlopRate *= 2.5 },
		func(c *sim.CostModel) { c.IORate *= 0.5 },
		func(c *sim.CostModel) { c.Alpha *= 0.25; c.Beta *= 2; c.FlopRate *= 0.5 },
	}
	for i, f := range perturb {
		cost := sim.Paragon()
		f(&cost)
		got, err := sk.Recost(skeleton.Params{Cost: &cost})
		if err != nil {
			t.Fatalf("perturbation %d: Recost: %v", i, err)
		}
		m := machine.New(mp.Procs(), cost)
		col := &trace.Collector{}
		m.SetTracer(col)
		res := ffthist.Run(m, cfg, mp)
		want := res.Stats.MakespanTime()
		if e := relErr(got, want); e > 1e-9 {
			t.Errorf("perturbation %d: recost makespan %v vs re-sim %v (rel err %g)", i, got, want, e)
		}
	}
}

// TestWhatIfTopEntryConfirmed builds a two-stage pipeline with a dominant
// producer span and checks (1) the what-if ranking puts the dominant span
// first, and (2) its predicted gain matches an actual re-run in which that
// span's work really is k times faster.
func TestWhatIfTopEntryConfirmed(t *testing.T) {
	const k = 4.0
	prog := func(speedup float64) func(*machine.Proc) {
		return func(p *machine.Proc) {
			switch p.ID() {
			case 0:
				for i := 0; i < 8; i++ {
					p.BeginSpan("produce")
					p.Compute(4e6 / speedup)
					p.EndSpan()
					p.Send(1, nil, 4096)
				}
			case 1:
				for i := 0; i < 8; i++ {
					p.Recv(0)
					p.BeginSpan("consume")
					p.Compute(1e6)
					p.EndSpan()
				}
			}
		}
	}
	cost := sim.Paragon()
	col := &trace.Collector{}
	m := machine.New(2, cost)
	m.SetTracer(col)
	m.Run(prog(1))
	sk, err := skeleton.FromEvents(cost, col.Events())
	if err != nil {
		t.Fatalf("skeleton.FromEvents: %v", err)
	}

	rep, err := sk.WhatIf([]float64{2, k})
	if err != nil {
		t.Fatalf("skeleton.WhatIf: %v", err)
	}
	if len(rep.Rows) == 0 || rep.Rows[0].Label != "produce" {
		t.Fatalf("top-ranked span = %+v, want produce first", rep.Rows)
	}
	predicted := rep.Baseline - rep.Rows[0].Gains[len(rep.Rows[0].Gains)-1]

	m2 := machine.New(2, cost)
	stats := m2.Run(prog(k))
	actual := stats.MakespanTime()
	if e := relErr(predicted, actual); e > 1e-12 {
		t.Errorf("what-if predicts makespan %v with produce %gx faster; actual re-run gives %v (rel err %g)",
			predicted, k, actual, e)
	}

	var buf bytes.Buffer
	rep.WriteTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "produce") || !strings.Contains(out, "consume") {
		t.Errorf("what-if table missing span rows:\n%s", out)
	}
}

// TestSensitivityCurves: identity scale must reproduce the baseline exactly;
// slower parameters must never shrink the makespan.
func TestSensitivityCurves(t *testing.T) {
	sk, _, _ := smallRun(t)
	sv, err := sk.Sensitivity([]float64{0.5, 1, 2})
	if err != nil {
		t.Fatalf("skeleton.Sensitivity: %v", err)
	}
	if sv.Alpha[1].Makespan != sk.Makespan || sv.Beta[1].Makespan != sk.Makespan || sv.Flop[1].Makespan != sk.Makespan {
		t.Fatalf("identity scale does not reproduce recorded makespan: %+v (want %v)", sv, sk.Makespan)
	}
	if sv.Alpha[2].Makespan < sk.Makespan || sv.Beta[2].Makespan < sk.Makespan {
		t.Errorf("doubling alpha/beta shrank the makespan: %+v", sv)
	}
	// Flop scale 2 = faster CPU: makespan must not grow.
	if sv.Flop[2].Makespan > sk.Makespan {
		t.Errorf("doubling flop rate grew the makespan: %v -> %v", sk.Makespan, sv.Flop[2].Makespan)
	}
	var buf bytes.Buffer
	sv.WriteCurves(&buf)
	if !strings.Contains(buf.String(), "floprate*s") {
		t.Errorf("curves output malformed:\n%s", buf.String())
	}
}

// TestEncodeDecodeRoundTrip: decode(encode(s)) must reproduce the skeleton
// exactly, and the content key must survive the round trip.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	sk, _, _ := smallRun(t)
	data, err := sk.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := skeleton.Decode(data)
	if err != nil {
		t.Fatalf("skeleton.Decode: %v", err)
	}
	data2, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("round trip is not byte-identical")
	}
	mk, err := got.Recost(skeleton.Params{})
	if err != nil {
		t.Fatalf("Recost(decoded): %v", err)
	}
	if mk != sk.Makespan {
		t.Fatalf("decoded skeleton re-costs to %v, recorded %v", mk, sk.Makespan)
	}
}

// TestDecodeRejectsTampering: flipping any content byte must fail the key
// check.
func TestDecodeRejectsTampering(t *testing.T) {
	sk, _, _ := smallRun(t)
	data, err := sk.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Tamper with the makespan digits rather than structural JSON.
	tampered := bytes.Replace(data, []byte(`"makespan": `), []byte(`"makespan": 1`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tampering had no effect")
	}
	if _, err := skeleton.Decode(tampered); err == nil || !strings.Contains(err.Error(), "content key mismatch") {
		t.Fatalf("tampered skeleton decoded without key error: %v", err)
	}
}

// TestWriteReadFile exercises the temp-file + rename write path.
func TestWriteReadFile(t *testing.T) {
	sk, _, _ := smallRun(t)
	path := t.TempDir() + "/run.fxskel"
	if err := sk.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := skeleton.ReadFile(path)
	if err != nil {
		t.Fatalf("skeleton.ReadFile: %v", err)
	}
	if got.Makespan != sk.Makespan || got.Ops() != sk.Ops() || got.P != sk.P {
		t.Fatalf("file round trip changed the skeleton: %+v vs %+v", got, sk)
	}
}

// TestDiff: identical skeletons diff as identical; a run with more work per
// set must surface the changed spans, sorted by moved time.
func TestDiff(t *testing.T) {
	old, _, _ := smallRun(t)
	same, _, _ := smallRun(t)
	if d := skeleton.Diff(old, same); !d.Identical() {
		var buf bytes.Buffer
		d.WriteReport(&buf)
		t.Fatalf("identical runs diff as changed:\n%s", buf.String())
	}

	cur, _, _ := captureFFTHist(t, sim.Paragon(),
		ffthist.Config{N: 32, Sets: 8, Bins: 16}, // two more sets
		ffthist.Mapping{Modules: 1, Stages: []int{4, 2, 2}})
	d := skeleton.Diff(old, cur)
	if d.Identical() || len(d.Deltas) == 0 {
		t.Fatal("regressed run diffs as identical")
	}
	if d.NewMakespan <= d.OldMakespan {
		t.Fatalf("more sets should raise the makespan: %v -> %v", d.OldMakespan, d.NewMakespan)
	}
	var buf bytes.Buffer
	d.WriteReport(&buf)
	out := buf.String()
	if !strings.Contains(out, "skeleton diff: makespan") || !strings.Contains(out, "spans that moved") {
		t.Fatalf("diff report malformed:\n%s", out)
	}
	for i := 1; i < len(d.Deltas); i++ {
		if d.Deltas[i-1].Magnitude() < d.Deltas[i].Magnitude() {
			t.Fatalf("deltas not sorted by moved time: %v", d.Deltas)
		}
	}
}

// TestNetScaleAndSpeedupValidation covers the Params error paths.
func TestNetScaleAndSpeedupValidation(t *testing.T) {
	sk, _, _ := smallRun(t)
	if _, err := sk.Recost(skeleton.Params{SpanSpeedup: map[string]float64{"no-such-span": 2}}); err == nil {
		t.Error("speedup for unknown span did not error")
	}
	if len(sk.Labels) > 0 {
		if _, err := sk.Recost(skeleton.Params{SpanSpeedup: map[string]float64{sk.Labels[0]: -1}}); err == nil {
			t.Error("negative speedup did not error")
		}
	}
	fast, err := sk.Recost(skeleton.Params{NetScale: 0.5})
	if err != nil {
		t.Fatalf("NetScale recost: %v", err)
	}
	slow, err := sk.Recost(skeleton.Params{NetScale: 2})
	if err != nil {
		t.Fatalf("NetScale recost: %v", err)
	}
	if !(fast <= sk.Makespan && slow >= sk.Makespan) {
		t.Errorf("net scaling not monotone: fast %v, recorded %v, slow %v", fast, sk.Makespan, slow)
	}
}

// TestFoldRejectsMalformedTraces covers the fold error paths.
func TestFoldRejectsMalformedTraces(t *testing.T) {
	cost := sim.Paragon()
	if _, err := skeleton.FromEvents(cost, nil); err == nil {
		t.Error("empty trace did not error")
	}
	unclosed := []machine.Event{
		{Proc: 0, Seq: 1, Kind: machine.EvSpanBegin, Label: "open", Peer: -1},
	}
	if _, err := skeleton.FromEvents(cost, unclosed); err == nil {
		t.Error("unclosed span did not error")
	}
	orphanWait := []machine.Event{
		{Proc: 0, Seq: 1, Kind: machine.EvWait, Peer: 1, End: 1},
	}
	if _, err := skeleton.FromEvents(cost, orphanWait); err == nil {
		t.Error("wait without recv did not error")
	}
}

// TestReplayStuckDetection: a skeleton with a receive whose message is never
// sent must fail loudly, not hang.
func TestReplayStuckDetection(t *testing.T) {
	sk := &skeleton.Skeleton{P: 2, Cost: sim.Paragon(), Procs: [][]skeleton.Op{
		{},
		{{Kind: machine.EvRecv, Peer: 0, Bytes: 8, PairSeq: 0, Label: -1, Span: -1}},
	}}
	if _, err := sk.Recost(skeleton.Params{}); err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("truncated skeleton did not report stuck replay: %v", err)
	}
}
