// Package fault implements deterministic chaos plans for the simulated
// machine: seeded, repeatable decisions about which messages are delayed,
// duplicated, or dropped-and-retransmitted, and which processors run slow
// or die at a virtual time.
//
// Determinism is the whole design. Decisions come from a counter-based
// (stateless) PRNG: every decision hashes (seed, stream, key...) through a
// splitmix64 chain, where the key is the pair (src, dst) and the per-pair
// message sequence number for message faults, or the processor id for
// slowdown/death. There is no shared generator state, no math/rand, and no
// dependence on the order in which processors consult the plan — so the
// same (seed, profile) produces byte-identical perturbations under every
// execution engine, any sweep -j level, and any host.
//
// Faults model a reliable transport (see internal/machine): "drop" means
// bounded retransmission with exponential backoff — extra latency, never
// loss — and duplicates are filtered at the receiver. Chaos without kill
// therefore never changes program output, only timing; kill surfaces as
// typed errors, never hangs.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"fxpar/internal/machine"
)

// Profile is a named set of fault probabilities and magnitudes. The zero
// value injects nothing.
type Profile struct {
	Name string

	// DelayProb is the per-message probability of extra latency, uniform in
	// [0, DelayMax) virtual seconds.
	DelayProb, DelayMax float64

	// DropProb is the per-transmission-attempt probability that the
	// reliable transport must retransmit; each retry costs a backoff that
	// starts at DropBackoff and doubles, with at most MaxRetries attempts
	// (then the message is forced through — links degrade, never sever).
	DropProb, DropBackoff float64
	MaxRetries            int

	// DupProb is the per-message probability of a transport-level
	// duplicate, discarded at the receiver.
	DupProb float64

	// SlowProb is the per-processor probability of a compute slowdown, by a
	// factor uniform in [1, SlowMax).
	SlowProb, SlowMax float64

	// KillProb is the per-processor probability of death, at a virtual time
	// uniform in [KillFrom, KillUntil).
	KillProb, KillFrom, KillUntil float64
}

// Lethal reports whether the profile can kill processors — the only class
// of fault that can make a run fail rather than just run slower.
func (pr Profile) Lethal() bool { return pr.KillProb > 0 }

// The built-in profiles. Magnitudes are sized for the Paragon-like cost
// models used by the experiments (alpha ~120us, app makespans of
// milliseconds to seconds).
var profiles = []Profile{
	{Name: "none"},
	{Name: "jitter", DelayProb: 1, DelayMax: 200e-6},
	{Name: "delay", DelayProb: 0.2, DelayMax: 2e-3},
	{Name: "dup", DupProb: 0.05},
	{Name: "drop", DropProb: 0.05, DropBackoff: 1e-3, MaxRetries: 5},
	{Name: "slow", SlowProb: 0.1, SlowMax: 4},
	{Name: "kill", KillProb: 0.05, KillFrom: 1e-3, KillUntil: 500e-3},
	{Name: "flaky",
		DelayProb: 0.1, DelayMax: 2e-3,
		DropProb: 0.02, DropBackoff: 1e-3, MaxRetries: 5,
		DupProb:  0.02,
		SlowProb: 0.05, SlowMax: 3},
	{Name: "havoc",
		DelayProb: 0.1, DelayMax: 2e-3,
		DropProb: 0.02, DropBackoff: 1e-3, MaxRetries: 5,
		DupProb:  0.02,
		SlowProb: 0.05, SlowMax: 3,
		KillProb: 0.05, KillFrom: 1e-3, KillUntil: 500e-3},
}

// DefaultProfile is the profile used when a chaos spec names none: every
// non-lethal fault class at once.
const DefaultProfile = "flaky"

// Profiles returns the built-in profiles in definition order.
func Profiles() []Profile { return append([]Profile(nil), profiles...) }

// ProfileNames returns the accepted profile names, for flag help text.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i, pr := range profiles {
		names[i] = pr.Name
	}
	return names
}

// ProfileByName resolves a profile name.
func ProfileByName(name string) (Profile, error) {
	for _, pr := range profiles {
		if pr.Name == name {
			return pr, nil
		}
	}
	return Profile{}, fmt.Errorf("fault: unknown profile %q (have: %s)", name, strings.Join(ProfileNames(), ", "))
}

// Plan is a deterministic chaos plan: a seed plus a profile. It implements
// machine.FaultPlan and is safe for concurrent use (it is immutable).
type Plan struct {
	Seed uint64
	Prof Profile
}

// New creates a plan from a seed and a profile.
func New(seed uint64, prof Profile) *Plan { return &Plan{Seed: seed, Prof: prof} }

// Parse resolves a -chaos flag value of the form "seed[:profile]", e.g.
// "42" (default profile) or "42:havoc". An empty spec yields a nil plan —
// chaos off — so call sites can thread the flag without checking.
func Parse(spec string) (*Plan, error) {
	if spec == "" {
		return nil, nil
	}
	seedStr, profName, has := strings.Cut(spec, ":")
	if !has {
		profName = DefaultProfile
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("fault: bad chaos seed in %q (want seed[:profile])", spec)
	}
	prof, err := ProfileByName(profName)
	if err != nil {
		return nil, err
	}
	return New(seed, prof), nil
}

// String renders the plan in Parse's format.
func (pl *Plan) String() string {
	return fmt.Sprintf("%d:%s", pl.Seed, pl.Prof.Name)
}

// Machine returns the plan as a machine.FaultPlan, mapping nil to nil so a
// possibly-absent plan threads through config structs without checks.
func (pl *Plan) Machine() machine.FaultPlan {
	if pl == nil {
		return nil
	}
	return pl
}

// Decision streams: distinct constants hashed into the PRNG so the same
// key can feed several independent decisions.
const (
	sDelay uint64 = iota + 1
	sDelayAmt
	sDrop
	sDup
	sSlow
	sSlowAmt
	sKill
	sKillAt
	sSeeds
)

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rnd hashes (seed, stream, a, b, c) to a uniform uint64.
func (pl *Plan) rnd(stream, a, b, c uint64) uint64 {
	h := mix64(pl.Seed ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ stream)
	h = mix64(h ^ a)
	h = mix64(h ^ b)
	h = mix64(h ^ c)
	return h
}

// u01 maps rnd to [0, 1) with 53-bit resolution.
func (pl *Plan) u01(stream, a, b, c uint64) float64 {
	return float64(pl.rnd(stream, a, b, c)>>11) / (1 << 53)
}

// MessageFault implements machine.FaultPlan: the perturbation of the seq-th
// message from src to dst.
func (pl *Plan) MessageFault(src, dst int, seq int64) machine.MessageFault {
	var mf machine.MessageFault
	pr := &pl.Prof
	s, d, q := uint64(src), uint64(dst), uint64(seq)
	if pr.DelayProb > 0 && pl.u01(sDelay, s, d, q) < pr.DelayProb {
		mf.Delay += pl.u01(sDelayAmt, s, d, q) * pr.DelayMax
	}
	if pr.DropProb > 0 {
		backoff := pr.DropBackoff
		for k := 0; k < pr.MaxRetries; k++ {
			// One decision per transmission attempt: attempt k is dropped
			// with DropProb, costing a doubling backoff before the resend.
			if pl.u01(sDrop^(uint64(k+1)<<32), s, d, q) >= pr.DropProb {
				break
			}
			mf.Retries++
			mf.Delay += backoff
			backoff *= 2
		}
	}
	if pr.DupProb > 0 && pl.u01(sDup, s, d, q) < pr.DupProb {
		mf.Duplicate = true
	}
	return mf
}

// SlowFactor implements machine.FaultPlan.
func (pl *Plan) SlowFactor(proc int) float64 {
	pr := &pl.Prof
	if pr.SlowProb <= 0 || pl.u01(sSlow, uint64(proc), 0, 0) >= pr.SlowProb {
		return 1
	}
	return 1 + pl.u01(sSlowAmt, uint64(proc), 0, 0)*(pr.SlowMax-1)
}

// DeathTime implements machine.FaultPlan.
func (pl *Plan) DeathTime(proc int) (float64, bool) {
	pr := &pl.Prof
	if pr.KillProb <= 0 || pl.u01(sKill, uint64(proc), 0, 0) >= pr.KillProb {
		return 0, false
	}
	return pr.KillFrom + pl.u01(sKillAt, uint64(proc), 0, 0)*(pr.KillUntil-pr.KillFrom), true
}

// ProcFaults implements machine.ProcFaultLister: it visits exactly the
// processors this plan slows or kills, so Run's fault pre-scan skips the
// 2n hook probes when the profile touches neither class (delay/dup/drop
// profiles make the scan O(1)) and otherwise reports only the victims. The
// underlying draws are the same counter-based hashes SlowFactor and
// DeathTime perform, so the visited set matches the probe loop decision
// for decision.
func (pl *Plan) ProcFaults(n int, visit func(proc int, slow, deathAt float64)) {
	pr := &pl.Prof
	if pr.SlowProb <= 0 && pr.KillProb <= 0 {
		return
	}
	for i := 0; i < n; i++ {
		slow := pl.SlowFactor(i)
		death, killed := pl.DeathTime(i)
		if slow > 1 || killed {
			visit(i, slow, death)
		}
	}
}

// Victims returns the processors the plan kills on a machine of n
// processors, with their death times — the ground truth chaos reports and
// tests compare observed failures against.
func (pl *Plan) Victims(n int) map[int]float64 {
	v := make(map[int]float64)
	for i := 0; i < n; i++ {
		if t, ok := pl.DeathTime(i); ok {
			v[i] = t
		}
	}
	return v
}

// Seeds derives n decorrelated campaign seeds from a base seed, so a chaos
// sweep can fan one scenario across seeds without hand-picking them.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = mix64(base ^ mix64(sSeeds^uint64(i+1)))
	}
	return out
}
