package fault

import (
	"reflect"
	"testing"
)

// TestDeterminism: a plan is a pure function of (seed, key) — two plans
// with the same seed agree on every decision, different seeds disagree on
// at least some.
func TestDeterminism(t *testing.T) {
	prof, _ := ProfileByName("havoc")
	a, b := New(42, prof), New(42, prof)
	diff := New(43, prof)
	sawDifference := false
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			for seq := int64(0); seq < 32; seq++ {
				ma, mb := a.MessageFault(src, dst, seq), b.MessageFault(src, dst, seq)
				if ma != mb {
					t.Fatalf("same seed diverges at (%d,%d,%d): %+v vs %+v", src, dst, seq, ma, mb)
				}
				if ma != diff.MessageFault(src, dst, seq) {
					sawDifference = true
				}
			}
		}
	}
	if !sawDifference {
		t.Error("seeds 42 and 43 produced identical message faults everywhere")
	}
	for p := 0; p < 64; p++ {
		if a.SlowFactor(p) != b.SlowFactor(p) {
			t.Fatalf("SlowFactor(%d) nondeterministic", p)
		}
		ta, oka := a.DeathTime(p)
		tb, okb := b.DeathTime(p)
		if ta != tb || oka != okb {
			t.Fatalf("DeathTime(%d) nondeterministic", p)
		}
	}
}

// TestDecisionsAreOrderIndependent: consulting the plan in any order, or
// repeatedly, never changes an answer (counter-based PRNG, no hidden
// state).
func TestDecisionsAreOrderIndependent(t *testing.T) {
	prof, _ := ProfileByName("flaky")
	pl := New(7, prof)
	want := pl.MessageFault(3, 5, 11)
	for i := 0; i < 100; i++ {
		pl.MessageFault(i%4, i%6, int64(i)) // interleave other queries
		if got := pl.MessageFault(3, 5, 11); got != want {
			t.Fatalf("answer changed after interleaved queries: %+v vs %+v", got, want)
		}
	}
}

// TestProfileRates: sanity-check that probabilities roughly materialize
// over a large sample (loose bounds — this guards against inverted
// comparisons, not distribution quality).
func TestProfileRates(t *testing.T) {
	prof, _ := ProfileByName("havoc")
	pl := New(1234, prof)
	delays, dups, retries := 0, 0, 0
	const n = 20000
	for seq := int64(0); seq < n; seq++ {
		mf := pl.MessageFault(1, 2, seq)
		if mf.Delay > 0 {
			delays++
		}
		if mf.Duplicate {
			dups++
		}
		retries += mf.Retries
		if mf.Retries > prof.MaxRetries {
			t.Fatalf("retries %d exceed cap %d", mf.Retries, prof.MaxRetries)
		}
	}
	// DelayProb 0.1 plus retransmission backoff; expect >= ~8% and <= ~20%.
	if delays < n/13 || delays > n/5 {
		t.Errorf("delayed %d/%d messages, want around 10-12%%", delays, n)
	}
	if dups < n/100 || dups > n/25 {
		t.Errorf("duplicated %d/%d messages, want around 2%%", dups, n)
	}
	if retries == 0 {
		t.Error("drop profile produced no retransmissions")
	}
	slowed, killed := 0, 0
	const procs = 4000
	for p := 0; p < procs; p++ {
		if pl.SlowFactor(p) > 1 {
			slowed++
		}
		if at, ok := pl.DeathTime(p); ok {
			killed++
			if at < prof.KillFrom || at >= prof.KillUntil {
				t.Fatalf("death time %g outside [%g, %g)", at, prof.KillFrom, prof.KillUntil)
			}
		}
	}
	if slowed == 0 || killed == 0 {
		t.Errorf("slowed=%d killed=%d over %d procs, want both > 0", slowed, killed, procs)
	}
}

// TestNoneProfileIsInert: the "none" profile never perturbs anything.
func TestNoneProfileIsInert(t *testing.T) {
	prof, _ := ProfileByName("none")
	pl := New(99, prof)
	for seq := int64(0); seq < 1000; seq++ {
		if mf := pl.MessageFault(0, 1, seq); mf.Delay != 0 || mf.Retries != 0 || mf.Duplicate {
			t.Fatalf("none profile produced %+v", mf)
		}
	}
	for p := 0; p < 100; p++ {
		if pl.SlowFactor(p) != 1 {
			t.Fatalf("none profile slows processor %d", p)
		}
		if _, ok := pl.DeathTime(p); ok {
			t.Fatalf("none profile kills processor %d", p)
		}
	}
	if prof.Lethal() {
		t.Error("none profile reports Lethal")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		seed    uint64
		profile string
		nilPlan bool
		err     bool
	}{
		{in: "", nilPlan: true},
		{in: "42", seed: 42, profile: DefaultProfile},
		{in: "42:havoc", seed: 42, profile: "havoc"},
		{in: "0:none", seed: 0, profile: "none"},
		{in: "x", err: true},
		{in: "42:bogus", err: true},
		{in: ":havoc", err: true},
	}
	for _, c := range cases {
		pl, err := Parse(c.in)
		if c.err {
			if err == nil {
				t.Errorf("Parse(%q): want error, got %v", c.in, pl)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if c.nilPlan {
			if pl != nil {
				t.Errorf("Parse(%q) = %v, want nil plan", c.in, pl)
			}
			if pl.Machine() != nil {
				t.Errorf("nil plan should thread to a nil machine.FaultPlan")
			}
			continue
		}
		if pl.Seed != c.seed || pl.Prof.Name != c.profile {
			t.Errorf("Parse(%q) = seed %d profile %q, want %d %q", c.in, pl.Seed, pl.Prof.Name, c.seed, c.profile)
		}
		if pl.Machine() == nil {
			t.Errorf("Parse(%q).Machine() = nil for a non-nil plan", c.in)
		}
		// Round trip through String.
		back, err := Parse(pl.String())
		if err != nil || back.Seed != pl.Seed || back.Prof.Name != pl.Prof.Name {
			t.Errorf("Parse(String()) round trip failed for %q: %v %v", c.in, back, err)
		}
	}
}

func TestProfileLookup(t *testing.T) {
	for _, name := range ProfileNames() {
		pr, err := ProfileByName(name)
		if err != nil || pr.Name != name {
			t.Errorf("ProfileByName(%q) = %+v, %v", name, pr, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("ProfileByName(nope) should fail")
	}
	if _, err := ProfileByName(DefaultProfile); err != nil {
		t.Errorf("default profile %q unknown: %v", DefaultProfile, err)
	}
}

// TestSeeds: derived campaign seeds are deterministic and distinct.
func TestSeeds(t *testing.T) {
	a, b := Seeds(5, 16), Seeds(5, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Seeds not deterministic")
	}
	seen := make(map[uint64]bool)
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
	if reflect.DeepEqual(Seeds(5, 4), Seeds(6, 4)) {
		t.Error("different base seeds derive identical seed lists")
	}
}

// TestVictims matches DeathTime over the id range.
func TestVictims(t *testing.T) {
	prof, _ := ProfileByName("kill")
	pl := New(31, prof)
	v := pl.Victims(2000)
	if len(v) == 0 {
		t.Fatal("kill profile found no victims in 2000 processors")
	}
	for id, at := range v {
		got, ok := pl.DeathTime(id)
		if !ok || got != at {
			t.Fatalf("Victims disagrees with DeathTime for %d", id)
		}
	}
}
