package fault

import (
	"testing"

	"fxpar/internal/machine"
)

// Plan must satisfy the machine's optional fault pre-scan interface: Run
// skips the 2n SlowFactor/DeathTime probes when the plan can enumerate its
// victims directly.
var _ machine.ProcFaultLister = (*Plan)(nil)

// TestProcFaultsMatchesProbes: for every built-in profile, the lister's
// visited set must be exactly the processors the probe loop would have
// recorded something for, with the same draws — the contract the machine's
// golden cross-check holds fault plans to.
func TestProcFaultsMatchesProbes(t *testing.T) {
	const n = 512
	type pf struct{ slow, death float64 }
	for _, prof := range Profiles() {
		pl := New(77, prof)

		want := map[int]pf{}
		for i := 0; i < n; i++ {
			var e pf
			if s := pl.SlowFactor(i); s > 1 {
				e.slow = s
			}
			if at, ok := pl.DeathTime(i); ok {
				e.death = at
			}
			if e != (pf{}) {
				want[i] = e
			}
		}

		got := map[int]pf{}
		pl.ProcFaults(n, func(proc int, slow, death float64) {
			if _, dup := got[proc]; dup {
				t.Fatalf("%s: processor %d visited twice", prof.Name, proc)
			}
			var e pf
			if slow > 1 {
				e.slow = slow
			}
			if death > 0 {
				e.death = death
			}
			if e == (pf{}) {
				t.Fatalf("%s: processor %d visited with no fault (slow %g, death %g)", prof.Name, proc, slow, death)
			}
			got[proc] = e
		})

		if len(got) != len(want) {
			t.Fatalf("%s: lister visited %d processors, probe loop records %d", prof.Name, len(got), len(want))
		}
		for proc, w := range want {
			if got[proc] != w {
				t.Fatalf("%s: processor %d: lister %+v, probes %+v", prof.Name, proc, got[proc], w)
			}
		}

		// Message-only profiles must make the pre-scan O(1): no victims, and
		// (by the early return) no per-processor draws at all.
		if prof.SlowProb <= 0 && prof.KillProb <= 0 && len(got) != 0 {
			t.Fatalf("%s: profile touches neither processor fault class but visited %d", prof.Name, len(got))
		}
	}
}
