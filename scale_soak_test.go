// Scale soak: drive the full scale telemetry stack — deterministic
// sampling, sharded sketch-folding sinks, sparse comm matrix, overhead
// budget — through one large FFT-Hist campaign and check the invariants
// that must hold at any P:
//
//   - telemetry never perturbs virtual time (sampled makespan == untraced);
//   - the sampler's decisions are a pure function of (proc, seq), so the
//     kept/dropped split is reproducible run to run;
//   - sketch-mode stream metering keeps only in-flight entries and its
//     quantiles are ordered;
//   - the budget accounts every sink it metered.
//
// The always-on test runs a modest P=512 so the race-enabled CI suite stays
// fast; setting FXPAR_SCALE_SOAK=1 raises it to the full P=65536 soak that
// produced the committed BENCH_scale.json point (see EXPERIMENTS.md).
package fxpar_test

import (
	"os"
	"reflect"
	"testing"
)

func TestScaleTelemetrySoak(t *testing.T) {
	procs := 512
	if os.Getenv("FXPAR_SCALE_SOAK") != "" {
		procs = 65536
	}

	nilRes := scaleRunNil(procs)
	res, samp, rep := scaleRunSampled(procs)

	if res.Makespan != nilRes.Makespan {
		t.Fatalf("sampled makespan %.12g != untraced %.12g — telemetry perturbed the simulation",
			res.Makespan, nilRes.Makespan)
	}
	if !reflect.DeepEqual(res.Hists, nilRes.Hists) {
		t.Fatal("sampled run produced different histograms than untraced")
	}
	if samp.Kept == 0 || samp.Dropped == 0 {
		t.Fatalf("sampler kept %d dropped %d: expected both nonzero at rate %s",
			samp.Kept, samp.Dropped, scaleSampleSpec)
	}

	// Second sampled run: every deterministic output must reproduce exactly —
	// the kept set is a pure function of (proc, seq, kind), not of host
	// scheduling.
	res2, samp2, _ := scaleRunSampled(procs)
	if !reflect.DeepEqual(samp, samp2) {
		t.Fatalf("sampler snapshots differ across identical runs:\n%+v\n%+v", samp, samp2)
	}
	if res.Stream != res2.Stream {
		t.Fatalf("stream stats differ across identical runs:\n%+v\n%+v", res.Stream, res2.Stream)
	}

	// Sketch-mode stream invariants.
	if !res.Stream.Sketched {
		t.Fatal("scale config did not run in sketch-stats mode")
	}
	if p50, p99 := res.Stream.LatencyP50, res.Stream.LatencyP99; !(p50 > 0 && p50 <= p99 && p99 <= res.Stream.MaxLatency) {
		t.Fatalf("latency quantiles out of order: p50 %g p99 %g max %g", p50, p99, res.Stream.MaxLatency)
	}

	// The budget metered all three sinks and saw every kept event.
	if len(rep.Sinks) != 3 {
		t.Fatalf("budget metered %d sinks, want 3: %+v", len(rep.Sinks), rep.Sinks)
	}
	for _, s := range rep.Sinks {
		if s.Events != samp.Kept {
			t.Fatalf("sink %s saw %d events, sampler kept %d", s.Name, s.Events, samp.Kept)
		}
	}
	if rep.Sample == nil || rep.Sample.Kept != samp.Kept {
		t.Fatalf("budget report sample = %+v, want kept %d", rep.Sample, samp.Kept)
	}
	t.Logf("P=%d: kept %d dropped %d, %s", procs, samp.Kept, samp.Dropped, rep.Line())
}
