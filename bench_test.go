// Benchmarks regenerating the paper's evaluation (one benchmark per table /
// figure) plus the design-choice ablations of DESIGN.md. Each iteration runs
// a full deterministic simulation; the interesting output is the reported
// virtual-time metrics (vthr = data sets per virtual second, vlat / vsec =
// virtual seconds), which are independent of the host machine. Host ns/op
// measures simulator overhead only.
package fxpar_test

import (
	"testing"

	"fxpar/internal/apps/airshed"
	"fxpar/internal/apps/barneshut"
	"fxpar/internal/apps/ffthist"
	"fxpar/internal/apps/multiblock"
	"fxpar/internal/apps/qsort"
	"fxpar/internal/apps/radar"
	"fxpar/internal/apps/stereo"
	"fxpar/internal/comm"
	"fxpar/internal/dist"
	"fxpar/internal/experiments"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// --- Table 1 -------------------------------------------------------------

// benchStream reports a stream result's virtual metrics.
func reportStream(b *testing.B, thr, lat float64) {
	b.ReportMetric(thr, "vthr")
	b.ReportMetric(lat, "vlat")
}

// BenchmarkTable1FFTHist256 regenerates the FFT-Hist rows of Table 1
// (reduced to 64x64 so a benchmark iteration stays fast; cmd/table1 runs the
// paper's full 256/512 sizes).
func BenchmarkTable1FFTHist(b *testing.B) {
	cfg := ffthist.Config{N: 64, Sets: 8, Bins: 64}
	for _, tc := range []struct {
		name string
		mp   ffthist.Mapping
	}{
		{"DataParallel", ffthist.DataParallel(16)},
		{"Pipeline", ffthist.Pipeline(8, 5, 3)},
		{"Replicated2xDP", ffthist.Mapping{Modules: 2, Stages: []int{8}}},
		{"Replicated2xPipeline", ffthist.Mapping{Modules: 2, Stages: []int{4, 3, 1}}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var thr, lat float64
			for i := 0; i < b.N; i++ {
				res := ffthist.Run(machine.New(16, sim.Paragon()), cfg, tc.mp)
				thr, lat = res.Stream.Throughput, res.Stream.Latency
			}
			reportStream(b, thr, lat)
		})
	}
}

// BenchmarkTable1Radar regenerates the radar row: data parallelism is capped
// by the matrix rows; replication uses the processors data parallelism
// cannot.
func BenchmarkTable1Radar(b *testing.B) {
	cfg := radar.Config{Gates: 128, Rows: 8, Sets: 8, Scale: 1.0 / 128, Threshold: 0.05}
	for _, tc := range []struct {
		name string
		mp   radar.Mapping
	}{
		{"DataParallelCapped", radar.DataParallel(8)}, // 8 of 16 procs usable
		{"Replicated2xDP", radar.Mapping{Modules: 2, Stages: []int{8}}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var thr, lat float64
			for i := 0; i < b.N; i++ {
				res := radar.Run(machine.New(16, sim.Paragon()), cfg, tc.mp)
				thr, lat = res.Stream.Throughput, res.Stream.Latency
			}
			reportStream(b, thr, lat)
		})
	}
}

// BenchmarkTable1Stereo regenerates the stereo row.
func BenchmarkTable1Stereo(b *testing.B) {
	cfg := stereo.Config{W: 64, H: 48, Disparities: 8, Window: 2, Sets: 8}
	for _, tc := range []struct {
		name string
		mp   stereo.Mapping
	}{
		{"DataParallel", stereo.DataParallel(16)},
		{"Pipeline", stereo.Mapping{Modules: 1, Stages: []int{8, 4, 4}}},
		{"Replicated2xDP", stereo.Mapping{Modules: 2, Stages: []int{8}}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var thr, lat float64
			for i := 0; i < b.N; i++ {
				res := stereo.Run(machine.New(16, sim.Paragon()), cfg, tc.mp)
				thr, lat = res.Stream.Throughput, res.Stream.Latency
			}
			reportStream(b, thr, lat)
		})
	}
}

// BenchmarkTable1Full runs the whole Table 1 driver (quick scale), mapper
// included.
func BenchmarkTable1Full(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(experiments.QuickTable1())
		if len(rows) != 4 {
			b.Fatal("table 1 rows missing")
		}
	}
}

// --- Figure 5 ------------------------------------------------------------

// BenchmarkFig5Mappings runs the Figure 5 driver: the latency-optimal
// mapping under each throughput constraint, chosen by the Subhlok-Vondran
// DP and validated by simulation.
func BenchmarkFig5Mappings(b *testing.B) {
	cfg := experiments.QuickFig5()
	var lastLat float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lastLat = rows[len(rows)-1].Latency
	}
	b.ReportMetric(lastLat, "vlat")
}

// --- Figure 6 ------------------------------------------------------------

// BenchmarkFig6Airshed regenerates Figure 6's two curves at one processor
// count: the data-parallel version against the separated-I/O task version.
func BenchmarkFig6Airshed(b *testing.B) {
	cfg := airshed.Config{
		Layers: 3, Grid: 256, Species: 8,
		Hours: 3, Steps: 2,
		ChemFlops: 220, TransFlops: 25, PreFlops: 10,
	}
	b.Run("DataParallel16", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			mk = airshed.Run(machine.New(16, sim.Paragon()), cfg, airshed.DataParallel).Makespan
		}
		b.ReportMetric(mk, "vsec")
	})
	b.Run("TaskIO16", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			mk = airshed.Run(machine.New(16, sim.Paragon()), cfg, airshed.TaskIO).Makespan
		}
		b.ReportMetric(mk, "vsec")
	})
}

// --- Figure 4: nested quicksort -------------------------------------------

func BenchmarkQuicksortNested(b *testing.B) {
	for _, procs := range []int{1, 4, 16} {
		b.Run(benchName("procs", procs), func(b *testing.B) {
			var mk float64
			for i := 0; i < b.N; i++ {
				res := qsort.Run(machine.New(procs, sim.Paragon()), 20000, 42)
				if !res.Sorted {
					b.Fatal("sort failed")
				}
				mk = res.Makespan
			}
			b.ReportMetric(mk, "vsec")
		})
	}
}

// --- Figure 7 / Section 5.3: Barnes-Hut -----------------------------------

func BenchmarkBarnesHut(b *testing.B) {
	cfg := barneshut.Config{N: 1024, Theta: 1.0, Seed: 13, K: 8}
	for _, procs := range []int{1, 4, 16} {
		b.Run(benchName("procs", procs), func(b *testing.B) {
			var mk float64
			for i := 0; i < b.N; i++ {
				mk = barneshut.Run(machine.New(procs, sim.Paragon()), cfg).Makespan
			}
			b.ReportMetric(mk, "vsec")
		})
	}
}

// BenchmarkBarnesHutKSweep is the ablation over the number of replicated
// tree levels k: communication (worklist items) versus space (partial tree
// nodes), Section 5.3's k >= log(p) guidance.
func BenchmarkBarnesHutKSweep(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8, 10} {
		b.Run(benchName("k", k), func(b *testing.B) {
			var res barneshut.Result
			for i := 0; i < b.N; i++ {
				res = barneshut.Run(machine.New(8, sim.Paragon()),
					barneshut.Config{N: 1024, Theta: 1.0, Seed: 13, K: k})
			}
			b.ReportMetric(res.Makespan, "vsec")
			b.ReportMetric(float64(res.WorklistTotal), "worklist")
			b.ReportMetric(float64(res.MaxPartialNodes), "treenodes")
		})
	}
}

// BenchmarkBarnesHutSimulate runs the full multi-step bh loop (build tree,
// compute forces, update positions) of Figure 7.
func BenchmarkBarnesHutSimulate(b *testing.B) {
	cfg := barneshut.Config{N: 512, Theta: 0.8, Seed: 7, K: 7}
	var mk float64
	for i := 0; i < b.N; i++ {
		mk = barneshut.Simulate(machine.New(8, sim.Paragon()), cfg, 2, 1e-3).Makespan
	}
	b.ReportMetric(mk, "vsec")
}

// --- Figure 1 / multiblock -------------------------------------------------

// BenchmarkMultiblock runs the interacting-meshes pattern (parallel
// sections with section-assignment couplings) at two processor allocations.
func BenchmarkMultiblock(b *testing.B) {
	cfg := multiblock.Config{H: 48, Widths: []int{30, 18, 42}, Iters: 30, Left: 100, Right: 0}
	for _, tc := range []struct {
		name string
		per  []int
	}{
		{"procs=3", []int{1, 1, 1}},
		{"procs=9", []int{3, 2, 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			total := 0
			for _, q := range tc.per {
				total += q
			}
			var mk float64
			for i := 0; i < b.N; i++ {
				mk = multiblock.Run(machine.New(total, sim.Paragon()), cfg, tc.per).Makespan
			}
			b.ReportMetric(mk, "vsec")
		})
	}
}

// --- Design-choice ablations (DESIGN.md) ----------------------------------

// BenchmarkAblationBarrier compares subset barriers against an
// implementation that can only issue machine-wide barriers: the fast
// subgroup is dragged down to the slow subgroup's pace (Section 4,
// "Localization"). The reported metric is the *fast* subgroup's finish
// time — with subset barriers it finishes two orders of magnitude earlier
// and is free to take on other work.
func BenchmarkAblationBarrier(b *testing.B) {
	const iters = 20
	run := func(global bool) float64 {
		m := machine.New(8, sim.Paragon())
		stats := fx.Run(m, func(p *fx.Proc) {
			world := p.Group()
			part := p.Partition(group.Sub("slow", 4), group.Sub("fast", 4))
			p.TaskRegion(part, func(r *fx.Region) {
				r.On("slow", func() {
					for i := 0; i < iters; i++ {
						p.Compute(1e5)
						if global {
							comm.Barrier(p.Proc, world)
						} else {
							p.Barrier()
						}
					}
				})
				r.On("fast", func() {
					for i := 0; i < iters; i++ {
						p.Compute(1e3)
						if global {
							comm.Barrier(p.Proc, world)
						} else {
							p.Barrier()
						}
					}
				})
			})
		})
		return stats.Procs[7].Finish // a fast-subgroup processor
	}
	b.Run("SubsetBarrier", func(b *testing.B) {
		var fastFinish float64
		for i := 0; i < b.N; i++ {
			fastFinish = run(false)
		}
		b.ReportMetric(fastFinish, "vsec_fast")
	})
	b.Run("GlobalBarrier", func(b *testing.B) {
		var fastFinish float64
		for i := 0; i < b.N; i++ {
			fastFinish = run(true)
		}
		b.ReportMetric(fastFinish, "vsec_fast")
	})
}

// BenchmarkAblationScalarReplication compares replicated scalar loop
// control against the rejected owner-computes-and-broadcasts alternative
// (Section 4, "Replicated Computations"): the broadcast serializes every
// iteration across subgroups and kills pipelining.
func BenchmarkAblationScalarReplication(b *testing.B) {
	const iters = 30
	run := func(broadcast bool) float64 {
		m := machine.New(4, sim.Paragon())
		stats := fx.Run(m, func(p *fx.Proc) {
			part := p.Partition(group.Sub("a", 2), group.Sub("b", 2))
			p.TaskRegion(part, func(r *fx.Region) {
				for i := 0; i < iters; i++ {
					i := i
					if broadcast {
						// Loop variable owned by processor 0 and broadcast
						// to everyone at the top of every iteration — the
						// rejected alternative: it locksteps the subgroups.
						_ = fx.BcastVal(p, 0, i)
					}
					// Subgroup a (owning the loop variable) is heavy; b is
					// light. With replicated loop control b races ahead
					// through its iterations; with owner-and-broadcast, b
					// cannot start iteration i until the owner gets around
					// to broadcasting it — pipelining between iterations is
					// lost (Section 4, "Replicated Computations").
					r.On("a", func() { p.Compute(2e4) })
					r.On("b", func() { p.Compute(1e3) })
				}
			})
		})
		return stats.Procs[3].Finish // a processor of the light subgroup b
	}
	b.Run("Replicated", func(b *testing.B) {
		var lightFinish float64
		for i := 0; i < b.N; i++ {
			lightFinish = run(false)
		}
		b.ReportMetric(lightFinish, "vsec_light")
	})
	b.Run("OwnerBroadcast", func(b *testing.B) {
		var lightFinish float64
		for i := 0; i < b.N; i++ {
			lightFinish = run(true)
		}
		b.ReportMetric(lightFinish, "vsec_light")
	})
}

// BenchmarkAblationAssign compares the minimal-processor-subset assignment
// against a whole-group synchronizing assignment (Section 4,
// "Identification of minimal processor subsets"): the synchronizing version
// destroys pipelined task parallelism.
func BenchmarkAblationAssign(b *testing.B) {
	const sets = 12
	run := func(full bool) float64 {
		m := machine.New(3, sim.Paragon())
		stats := fx.Run(m, func(p *fx.Proc) {
			world := p.Group()
			g1 := group.MustNew([]int{0})
			g2 := group.MustNew([]int{1})
			g3 := group.MustNew([]int{2})
			a := dist.New[float64](p.Proc, dist.RowBlock2D(g1, 8, 8))
			bb := dist.New[float64](p.Proc, dist.RowBlock2D(g2, 8, 8))
			c := dist.New[float64](p.Proc, dist.RowBlock2D(g3, 8, 8))
			part := p.Partition(group.Sub("s1", 1), group.Sub("s2", 1), group.Sub("s3", 1))
			p.TaskRegion(part, func(r *fx.Region) {
				for i := 0; i < sets; i++ {
					r.On("s1", func() { p.Compute(1e5) })
					dist.Assign(p.Proc, bb, a)
					if full {
						// An implementation that cannot identify minimal
						// processor subsets makes every current processor
						// synchronize on every parent-scope assignment —
						// stage 3 waits on the stage-1 -> stage-2 transfer.
						comm.Barrier(p.Proc, world)
					}
					r.On("s2", func() { p.Compute(1e5) })
					dist.Assign(p.Proc, c, bb)
					if full {
						comm.Barrier(p.Proc, world)
					}
					r.On("s3", func() { p.Compute(1e5) })
				}
			})
		})
		return stats.MakespanTime()
	}
	b.Run("MinimalSubset", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			mk = run(false)
		}
		b.ReportMetric(mk, "vsec")
	})
	b.Run("FullGroupSync", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			mk = run(true)
		}
		b.ReportMetric(mk, "vsec")
	})
}

// BenchmarkAblationPlacement exercises the implementation freedom Section 4
// notes for TASK_PARTITION: "the implementation is free to choose any such
// legal assignment" of physical processors to subgroups, and Fx "attempts
// to choose a mapping that minimizes communication and synchronization
// overheads". On a linear mesh with visible per-hop cost, contiguous
// subgroup placement beats scattered placement for subgroup-internal
// communication.
func BenchmarkAblationPlacement(b *testing.B) {
	cost := sim.Paragon()
	cost.PerHop = 200e-6
	run := func(scattered bool) float64 {
		m := machine.NewMesh(8, 1, cost)
		var g1, g2 *group.Group
		if scattered {
			g1 = group.MustNew([]int{0, 2, 4, 6})
			g2 = group.MustNew([]int{1, 3, 5, 7})
		} else {
			g1 = group.MustNew([]int{0, 1, 2, 3})
			g2 = group.MustNew([]int{4, 5, 6, 7})
		}
		stats := m.Run(func(p *machine.Proc) {
			g := g1
			if !g.Contains(p.ID()) {
				g = g2
			}
			r, _ := g.RankOf(p.ID())
			for i := 0; i < 20; i++ {
				p.Compute(1e3)
				// Ring exchange within the subgroup, then a subset barrier.
				comm.Send(p, g, (r+1)%g.Size(), []float64{1})
				comm.Recv[float64](p, g, (r+3)%g.Size())
				comm.Barrier(p, g)
			}
		})
		return stats.MakespanTime()
	}
	b.Run("Contiguous", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			mk = run(false)
		}
		b.ReportMetric(mk, "vsec")
	})
	b.Run("Scattered", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			mk = run(true)
		}
		b.ReportMetric(mk, "vsec")
	})
}

// --- substrate micro-benchmarks -------------------------------------------

func BenchmarkCollectives(b *testing.B) {
	b.Run("Barrier64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := machine.New(64, sim.Paragon())
			m.Run(func(p *machine.Proc) {
				comm.Barrier(p, group.World(64))
			})
		}
	})
	b.Run("Bcast64x1k", func(b *testing.B) {
		data := make([]float64, 1024)
		for i := 0; i < b.N; i++ {
			m := machine.New(64, sim.Paragon())
			m.Run(func(p *machine.Proc) {
				comm.Bcast(p, group.World(64), 0, data)
			})
		}
	})
}

func BenchmarkTranspose(b *testing.B) {
	for _, procs := range []int{4, 16} {
		b.Run(benchName("procs", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := machine.New(procs, sim.Paragon())
				m.Run(func(p *machine.Proc) {
					g := group.World(procs)
					src := dist.New[complex128](p, dist.RowBlock2D(g, 128, 128))
					dst := dist.New[complex128](p, dist.RowBlock2D(g, 128, 128))
					dist.Transpose2D(p, dst, src)
				})
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
