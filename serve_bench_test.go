// BenchmarkServeCampaign measures the serving layer (internal/serve) end to
// end over real HTTP: K concurrent clients posting a mix of duplicate and
// distinct /optimize requests against a cold server, then K duplicates
// against the warm server. The interesting numbers are the dedupe ratio
// (campaigns run per distinct request — exactly one), response identity
// (duplicates read byte-identical bytes), and the warm/cold latency split:
// answering a duplicate from the job cache must be orders of magnitude
// cheaper than the campaign itself — the benchmark enforces >= 10x.
//
// Each run snapshots its numbers to BENCH_serve.json. The dedupe counters
// and the virtual-time prediction spot checks are deterministic and diffed
// exactly by CI; host-time fields (Sec/Seconds/Speedup/Workers) are skipped.
package fxpar_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"fxpar/internal/mapping"
	"fxpar/internal/serve"
	"fxpar/internal/sweep"
)

type serveBenchFile struct {
	// Request mix.
	K        int // concurrent clients per round
	Distinct int // distinct request bodies in the cold round
	// Deterministic results (exact-diffed by CI).
	CampaignsRun       int64 // must equal Distinct
	DedupHits          int64 // K-Distinct cold + K warm
	ResponsesIdentical bool  // duplicates byte-identical within every group
	Job0PredLatency    float64
	Job0PredThroughput float64
	Job0Best           string
	// Host-time results (skipped in comparisons).
	ColdSeconds    float64 // wall-clock of the cold round
	ColdLatencySec float64 // mean request latency, cold round
	DupLatencySec  float64 // mean request latency, warm duplicates
	DupSpeedup     float64 // ColdLatencySec / DupLatencySec
	Workers        int
}

// serveBenchBodies is the cold round's request mix: 4 distinct campaigns,
// posted by 4 clients each (the two FFT-Hist goals share cost tables but
// are distinct response keys).
func serveBenchBodies() [][]byte {
	reqs := []map[string]any{
		{"app": "ffthist", "p": 16, "sets": 6, "quick": true, "goalRatio": 2.05},
		{"app": "ffthist", "p": 16, "sets": 6, "quick": true, "goalRatio": 1.01},
		{"app": "radar", "p": 16, "sets": 6, "quick": true, "goalRatio": 2.14},
		{"app": "stereo", "p": 16, "sets": 6, "quick": true, "goalRatio": 2.75},
	}
	bodies := make([][]byte, len(reqs))
	for i, r := range reqs {
		data, err := json.Marshal(r)
		if err != nil {
			panic(err)
		}
		bodies[i] = data
	}
	return bodies
}

// fire posts every request concurrently (group i posts bodies[i%len]) and
// returns the response bodies by request plus the mean request latency.
func fire(b *testing.B, url string, bodies [][]byte, k int) ([][]byte, float64) {
	b.Helper()
	out := make([][]byte, k)
	lats := make([]time.Duration, k)
	var wg sync.WaitGroup
	for c := 0; c < k; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Post(url+"/optimize", "application/json",
				bytes.NewReader(bodies[c%len(bodies)]))
			if err != nil {
				b.Error(err)
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			lats[c] = time.Since(start)
			if err != nil || resp.StatusCode != http.StatusOK {
				b.Errorf("request %d: status %d err %v: %s", c, resp.StatusCode, err, data)
				return
			}
			out[c] = data
		}(c)
	}
	wg.Wait()
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return out, (sum / time.Duration(k)).Seconds()
}

func BenchmarkServeCampaign(b *testing.B) {
	const K = 16
	bodies := serveBenchBodies()
	var snap serveBenchFile

	for i := 0; i < b.N; i++ {
		// A genuinely cold server: fresh registry AND a cleared process-wide
		// cost-table memo, so the cold round runs real campaigns.
		mapping.ResetTableMemo()
		s, err := serve.New(serve.Options{Workers: 0})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())

		coldStart := time.Now()
		coldResp, coldLat := fire(b, ts.URL, bodies, K)
		coldSec := time.Since(coldStart).Seconds()

		// Warm round: K duplicates of body 0 against the same server.
		warmResp, warmLat := fire(b, ts.URL, bodies[:1], K)

		identical := true
		for c := 0; c < K; c++ {
			if !bytes.Equal(coldResp[c], coldResp[c%len(bodies)]) {
				identical = false
				b.Errorf("cold response %d differs from its group leader", c)
			}
			if !bytes.Equal(warmResp[c], coldResp[0]) {
				identical = false
				b.Errorf("warm response %d differs from the cached result", c)
			}
		}

		st := s.Stats()
		if st.Campaigns != int64(len(bodies)) {
			b.Errorf("campaigns = %d, want %d: the singleflight leaked duplicate work", st.Campaigns, len(bodies))
		}
		if want := int64(K - len(bodies) + K); st.DedupHits != want {
			b.Errorf("dedupHits = %d, want %d", st.DedupHits, want)
		}
		if warmLat > 0 && coldLat/warmLat < 10 {
			b.Errorf("warm duplicates only %.1fx faster than cold campaigns (cold %.4fs, warm %.4fs); want >= 10x",
				coldLat/warmLat, coldLat, warmLat)
		}

		var job0 serve.OptimizeResult
		if err := json.Unmarshal(coldResp[0], &job0); err != nil {
			b.Fatal(err)
		}
		snap = serveBenchFile{
			K: K, Distinct: len(bodies),
			CampaignsRun: st.Campaigns, DedupHits: st.DedupHits,
			ResponsesIdentical: identical,
			Job0PredLatency:    job0.PredLatency,
			Job0PredThroughput: job0.PredThroughput,
			Job0Best:           job0.Best,
			ColdSeconds:        coldSec,
			ColdLatencySec:     coldLat,
			DupLatencySec:      warmLat,
			DupSpeedup:         coldLat / warmLat,
			Workers:            sweep.Workers(0),
		}
		ts.Close()
		s.Close()
	}
	b.StopTimer()
	b.ReportMetric(snap.DupSpeedup, "dup-speedup-x")
	b.ReportMetric(snap.DupLatencySec*1e3, "dup-ms")

	f, err := os.Create("BENCH_serve.json")
	if err != nil {
		b.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}
