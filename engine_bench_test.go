// BenchmarkEngineCampaign measures what the execution engines actually
// differ in: host wall-clock for a campaign of communication-heavy
// simulations. The workload is deliberately machine-layer-dominated (ring
// exchange plus a dissemination barrier every round, almost no compute) so
// the cost being compared is scheduling — goroutine handoffs and condvar
// wakeups under the goroutine engine vs run-queue handoffs under coop.
//
// Every (P, engine) cell runs the same jobs, and the benchmark asserts the
// virtual makespans are identical across engines before trusting the host
// numbers. Results snapshot to BENCH_engine.json so CI can compare the
// campaign cost across revisions (host-time fields tolerated, virtual
// spot-check exact).
package fxpar_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"fxpar/internal/comm"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/sweep"
)

// engineBenchEntry is one (machine size, engine) cell of the campaign
// matrix.
type engineBenchEntry struct {
	Procs  int
	Engine string
	// Host-time results (skipped by the CI baseline compare).
	CampaignSeconds float64
	SimsPerSecond   float64
	// Virtual spot check: makespan of job 0, identical across engines and
	// hosts, compared exactly by CI.
	Job0Makespan float64
}

type engineBenchFile struct {
	Jobs    int
	Entries []engineBenchEntry
	// CoopSpeedup256 is the headline number: goroutine campaign seconds
	// divided by coop campaign seconds at P=256 (host time; skipped in the
	// baseline compare).
	CoopSpeedup256 float64
}

// engineCampaignJob is one simulation of the campaign: a neighbour-exchange
// relaxation with a global barrier per iteration. The world group is built
// once and shared (groups are read-only after construction, and in the real
// applications partitions are long-lived), so host time is dominated by the
// machine layer: at P processors each job performs ~16*P*(2+2*log2(P)) message
// operations, and the barrier's dissemination rounds are chains of blocking
// receives — exactly the handoff-heavy regime the engines differ in.
func engineCampaignJob(procs, job int, g *group.Group, eng machine.Engine) float64 {
	m := machine.New(procs, sim.Paragon())
	m.SetEngine(eng)
	st := m.Run(func(p *machine.Proc) {
		r := p.ID()
		for it := 0; it < 16; it++ {
			p.Compute(float64(1+job) * 1e3)
			comm.Send(p, g, (r+1)%procs, []float64{float64(r)})
			comm.Recv[float64](p, g, (r+procs-1)%procs)
			comm.Barrier(p, g)
		}
	})
	return st.MakespanTime()
}

func BenchmarkEngineCampaign(b *testing.B) {
	const jobs = 6
	engines := []machine.Engine{machine.Goroutine(), machine.Coop(1)}
	sizes := []int{64, 256, 1024}

	var entries []engineBenchEntry
	for i := 0; i < b.N; i++ {
		entries = entries[:0]
		// makespans[procs][job] from the first engine; later engines must
		// reproduce them exactly.
		base := make(map[int][]float64, len(sizes))
		for _, procs := range sizes {
			g := group.World(procs)
			for _, eng := range engines {
				// Best of a few campaign repetitions: a single campaign is
				// tens of milliseconds, so one badly-timed GC cycle would
				// dominate the comparison.
				const reps = 3
				campaign := 0.0
				var ms []float64
				for rep := 0; rep < reps; rep++ {
					start := time.Now()
					res := sweep.Map(0, jobs, func(j int) (float64, error) {
						return engineCampaignJob(procs, j, g, eng), nil
					})
					elapsed := time.Since(start).Seconds()
					if rep == 0 || elapsed < campaign {
						campaign = elapsed
					}
					ms = make([]float64, jobs)
					for j, r := range res {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
						ms[j] = r.Value
					}
				}
				if prev, ok := base[procs]; !ok {
					base[procs] = ms
				} else {
					for j := range ms {
						if ms[j] != prev[j] {
							b.Fatalf("P=%d job %d: %s makespan %v != %s makespan %v",
								procs, j, eng.Name(), ms[j], engines[0].Name(), prev[j])
						}
					}
				}
				entries = append(entries, engineBenchEntry{
					Procs:           procs,
					Engine:          eng.Name(),
					CampaignSeconds: campaign,
					SimsPerSecond:   float64(jobs) / campaign,
					Job0Makespan:    ms[0],
				})
			}
		}
	}
	b.StopTimer()

	snap := engineBenchFile{Jobs: jobs, Entries: entries}
	var goro256, coop256 float64
	for _, e := range entries {
		if e.Procs == 256 && e.Engine == "goroutine" {
			goro256 = e.CampaignSeconds
		}
		if e.Procs == 256 && e.Engine == "coop" {
			coop256 = e.CampaignSeconds
		}
	}
	if coop256 > 0 {
		snap.CoopSpeedup256 = goro256 / coop256
		b.ReportMetric(snap.CoopSpeedup256, "coop-speedup-256")
	}

	f, err := os.Create("BENCH_engine.json")
	if err != nil {
		b.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}
