// Cross-engine golden soak: the execution engines are host-time strategies
// only, so a full P=1024 FFT-Hist pipeline campaign must produce
// byte-identical traces, per-processor statistics, and metrics under every
// engine. This is the acceptance test of the engine abstraction — any
// divergence means an engine changed virtual-time semantics, not just
// scheduling.
package fxpar_test

import (
	"bytes"
	"reflect"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/metrics"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/trace"
)

// soakOutputs is everything one engine run produces that must match across
// engines.
type soakOutputs struct {
	res     ffthist.Result
	events  []machine.Event
	metrics []byte // metrics.FromTrace snapshot JSON
}

func runEngineSoak(t *testing.T, eng machine.Engine, cfg ffthist.Config, mp ffthist.Mapping) soakOutputs {
	return runEngineSoakFaults(t, eng, cfg, mp, 1024, nil)
}

func runEngineSoakFaults(t *testing.T, eng machine.Engine, cfg ffthist.Config, mp ffthist.Mapping,
	procs int, fp machine.FaultPlan) soakOutputs {
	t.Helper()
	col := &trace.Collector{}
	m := machine.New(procs, sim.Paragon())
	m.SetEngine(eng)
	m.SetTracer(col)
	m.SetFaults(fp)
	res := ffthist.Run(m, cfg, mp)
	evs := col.Events()
	js, err := metrics.FromTrace(evs).Snapshot().JSON()
	if err != nil {
		t.Fatalf("%s metrics: %v", eng.Name(), err)
	}
	return soakOutputs{res: res, events: evs, metrics: js}
}

// TestEngineSoakP1024 runs the FFT-Hist pipeline on 1024 simulated
// processors — 8 replicated modules of a 64/32/32 three-stage pipeline —
// under the goroutine and the coop engine, and requires identical Events()
// streams, RunStats, and metrics.FromTrace snapshots.
func TestEngineSoakP1024(t *testing.T) {
	cfg := ffthist.Config{N: 64, Sets: 16, Bins: 64}
	if testing.Short() {
		cfg.Sets = 8
	}
	mp := ffthist.Mapping{Modules: 8, Stages: []int{64, 32, 32}}

	base := runEngineSoak(t, machine.Goroutine(), cfg, mp)
	if len(base.events) == 0 {
		t.Fatal("baseline run recorded no events")
	}

	for _, eng := range []machine.Engine{machine.Coop(1), machine.Coop(4)} {
		got := runEngineSoak(t, eng, cfg, mp)

		if !reflect.DeepEqual(got.res.Stats, base.res.Stats) {
			t.Errorf("%s: RunStats diverge from goroutine engine", eng.Name())
		}
		if !reflect.DeepEqual(got.res.Stream, base.res.Stream) {
			t.Errorf("%s: stream stats diverge: %+v vs %+v", eng.Name(), got.res.Stream, base.res.Stream)
		}
		if !reflect.DeepEqual(got.res.Hists, base.res.Hists) {
			t.Errorf("%s: histogram outputs diverge", eng.Name())
		}
		if len(got.events) != len(base.events) {
			t.Fatalf("%s: %d events vs %d under goroutine", eng.Name(), len(got.events), len(base.events))
		}
		for i := range got.events {
			if got.events[i] != base.events[i] {
				t.Fatalf("%s: event %d diverges:\n got %+v\nwant %+v", eng.Name(), i, got.events[i], base.events[i])
			}
		}
		if !bytes.Equal(got.metrics, base.metrics) {
			t.Errorf("%s: metrics snapshots diverge (%d vs %d bytes)", eng.Name(), len(got.metrics), len(base.metrics))
		}
	}
}

// TestEngineSkeletonIdentityP64: the serialized communication skeleton is a
// content-keyed artifact (cacheable, diffable), so the same P=64 FFT-Hist
// run must serialize to byte-identical skeletons under every engine — the
// capture path goes through a live skeleton.Sink, whose per-processor
// buffers fill in engine-dependent host order but must fold to the same
// canonical form.
func TestEngineSkeletonIdentityP64(t *testing.T) {
	cfg := ffthist.Config{N: 64, Sets: 8, Bins: 64}
	mp := ffthist.Mapping{Modules: 2, Stages: []int{16, 8, 8}}

	capture := func(eng machine.Engine) []byte {
		t.Helper()
		sink := skeleton.NewSink(sim.Paragon(), "")
		m := machine.New(64, sim.Paragon())
		m.SetEngine(eng)
		m.SetTracer(sink)
		ffthist.Run(m, cfg, mp)
		sk, err := sink.Skeleton()
		if err != nil {
			t.Fatalf("%s: skeleton: %v", eng.Name(), err)
		}
		data, err := sk.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", eng.Name(), err)
		}
		return data
	}

	base := capture(machine.Goroutine())
	if len(base) == 0 {
		t.Fatal("baseline skeleton is empty")
	}
	for _, eng := range []machine.Engine{machine.Coop(1), machine.Coop(4)} {
		if got := capture(eng); !bytes.Equal(got, base) {
			t.Errorf("%s: serialized skeleton diverges from goroutine engine (%d vs %d bytes)",
				eng.Name(), len(got), len(base))
		}
	}
}

// TestEngineSoakChaosP256: fault injection is part of the virtual-time
// semantics, so the same (seed, profile, scenario) must produce
// byte-identical traces — chaos markers included — RunStats, outputs, and
// metrics under every engine, including the shuffled schedule perturbation.
// The profile exercises every non-lethal fault class (delays, forced
// retransmissions, duplicates, slowdowns), whose decisions would diverge
// instantly if any engine consulted the plan in host order rather than by
// the per-pair message sequence.
func TestEngineSoakChaosP256(t *testing.T) {
	cfg := ffthist.Config{N: 64, Sets: 8, Bins: 64}
	mp := ffthist.Mapping{Modules: 2, Stages: []int{64, 32, 32}}
	prof, err := fault.ProfileByName("flaky")
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.New(42, prof)

	base := runEngineSoakFaults(t, machine.Goroutine(), cfg, mp, 256, plan)
	faults := 0
	for _, e := range base.events {
		if e.Kind == machine.EvFault {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("chaos soak injected no faults — the scenario exercises nothing")
	}

	for _, eng := range []machine.Engine{machine.Coop(1), machine.Coop(4), machine.CoopShuffled(4, 9)} {
		got := runEngineSoakFaults(t, eng, cfg, mp, 256, plan)
		if !reflect.DeepEqual(got.res.Stats, base.res.Stats) {
			t.Errorf("%s: chaotic RunStats diverge from goroutine engine", eng.Name())
		}
		if !reflect.DeepEqual(got.res.Hists, base.res.Hists) {
			t.Errorf("%s: chaotic histogram outputs diverge", eng.Name())
		}
		if len(got.events) != len(base.events) {
			t.Fatalf("%s: %d events vs %d under goroutine", eng.Name(), len(got.events), len(base.events))
		}
		for i := range got.events {
			if got.events[i] != base.events[i] {
				t.Fatalf("%s: chaotic event %d diverges:\n got %+v\nwant %+v", eng.Name(), i, got.events[i], base.events[i])
			}
		}
		if !bytes.Equal(got.metrics, base.metrics) {
			t.Errorf("%s: chaotic metrics snapshots diverge (%d vs %d bytes)", eng.Name(), len(got.metrics), len(base.metrics))
		}
	}
}
