// BenchmarkSweepCampaign measures the host-parallel simulation-campaign
// driver (internal/sweep) end to end: a batch of independent large-machine
// simulations fanned out over the host cores, the kind of campaign the
// cost-table builder (mapping.BuildTables) runs. Unlike the virtual-time
// benchmarks in bench_test.go, the interesting numbers here are HOST times:
// campaign wall-clock, simulations per host second, and the construction
// time of a 1024-processor machine (which the lazy mailbox representation
// keeps out of the O(n^2) regime).
//
// Each run snapshots its numbers to BENCH_sweep.json so CI can archive the
// campaign throughput alongside the Table 1 virtual-time snapshot.
package fxpar_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"fxpar/internal/comm"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/sweep"
)

type sweepBenchFile struct {
	// Campaign shape.
	Jobs         int // independent simulations per campaign
	MachineProcs int // simulated processors per simulation
	Workers      int // host worker bound (GOMAXPROCS)
	// Host-time results.
	CampaignSeconds   float64 // wall-clock for one campaign
	SimsPerSecond     float64
	MachineNew1024Sec float64 // constructing one 1024-proc machine
	// A virtual-time spot check: makespan of job 0, identical on every
	// host and at every worker count.
	Job0Makespan float64
}

// campaignJob simulates a neighbour-exchange relaxation on a large machine;
// the job index scales the compute load so the campaign is heterogeneous,
// like a real cost-table sweep over processor counts.
func campaignJob(procs, job int) float64 {
	m := machine.New(procs, sim.Paragon())
	st := m.Run(func(p *machine.Proc) {
		g := group.World(procs)
		r := p.ID()
		for it := 0; it < 4; it++ {
			p.Compute(float64(1+job) * 1e3)
			comm.Send(p, g, (r+1)%procs, []float64{float64(r)})
			comm.Recv[float64](p, g, (r+procs-1)%procs)
		}
	})
	return st.MakespanTime()
}

func BenchmarkSweepCampaign(b *testing.B) {
	const procs, jobs = 256, 24
	var campaign time.Duration
	var makespans []float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res := sweep.Map(0, jobs, func(j int) (float64, error) {
			return campaignJob(procs, j), nil
		})
		campaign = time.Since(start)
		makespans = makespans[:0]
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			makespans = append(makespans, r.Value)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(jobs)/campaign.Seconds(), "sims/s")

	// Construction cost of a machine at the paper-exceeding 1024-processor
	// scale: with lazy mailboxes this is O(n), not O(n^2) mailbox allocs.
	constStart := time.Now()
	const constructions = 50
	for i := 0; i < constructions; i++ {
		_ = machine.New(1024, sim.Paragon())
	}
	construct := time.Since(constStart).Seconds() / constructions
	b.ReportMetric(construct*1e9, "new1024-ns")

	snap := sweepBenchFile{
		Jobs:              jobs,
		MachineProcs:      procs,
		Workers:           runtime.GOMAXPROCS(0),
		CampaignSeconds:   campaign.Seconds(),
		SimsPerSecond:     float64(jobs) / campaign.Seconds(),
		MachineNew1024Sec: construct,
		Job0Makespan:      makespans[0],
	}
	f, err := os.Create("BENCH_sweep.json")
	if err != nil {
		b.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}
