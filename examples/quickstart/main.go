// Quickstart: the paper's Section 2.1 example, executable.
//
// Eight simulated processors are divided into subgroups "some" (3) and
// "many" (5) by a TASK_PARTITION; arrays are mapped onto each subgroup;
// ON SUBGROUP blocks compute independently on each side; and a parent-scope
// assignment moves data from "some" to "many" — exactly the code shape of
// the paper's first example.
//
// Run with: go run ./examples/quickstart
// (add -engine coop to run on the cooperative execution engine, or
// -engine coop:4 for the sharded multi-worker scheduler; add -p 4096 to
// grow the machine — the "many" subgroup absorbs the extra processors and
// the gathered array is unchanged, only host time moves)
package main

import (
	"flag"
	"fmt"
	"os"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func main() {
	engine := flag.String("engine", machine.DefaultEngineName(), "execution engine: goroutine, coop, or coop:N")
	procs := flag.Int("p", 8, "simulated processors (>= 4: 3 for the some subgroup, the rest for many)")
	flag.Parse()
	eng, err := machine.EngineByName(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(2)
	}
	if *procs < 4 {
		fmt.Fprintln(os.Stderr, "quickstart: -p must be at least 4 (the some subgroup takes 3)")
		os.Exit(2)
	}
	mach := machine.New(*procs, sim.Paragon())
	mach.SetEngine(eng)

	stats := fx.Run(mach, func(p *fx.Proc) {
		// TASK_PARTITION myPart :: some(3), many(NUMBER_OF_PROCESSORS()-3)
		part := p.Partition(
			group.Sub("some", 3),
			group.Sub("many", p.NumberOfProcessors()-3),
		)

		// SUBGROUP(some) :: someLow ; SUBGROUP(many) :: manyLow, manyHigh
		someLow := dist.New[float64](p.Proc, dist.RowBlock2D(part.Group("some"), 6, 4))
		manyLow := dist.New[float64](p.Proc, dist.RowBlock2D(part.Group("many"), 6, 4))
		manyHigh := dist.New[float64](p.Proc, dist.RowBlock2D(part.Group("many"), 6, 4))

		// BEGIN TASK_REGION
		p.TaskRegion(part, func(r *fx.Region) {
			// ON SUBGROUP some: someLow = ...
			r.On("some", func() {
				someLow.FillFunc(func(idx []int) float64 {
					return float64(idx[0]*10 + idx[1])
				})
				p.Barrier() // subgroup-local barrier: "many" is unaffected
			})

			// Parent scope: manyLow = someLow (runs on the union of owners).
			dist.Assign(p.Proc, manyLow, someLow)

			// ON SUBGROUP many: manyHigh = f(manyLow)
			r.On("many", func() {
				for i, v := range manyLow.Local() {
					manyHigh.Local()[i] = 2*v + 1
				}
				p.Compute(float64(len(manyLow.Local())) * 2)
			})
		})
		// END TASK_REGION

		// Gather the result on the "many" subgroup's first processor.
		if out := dist.GatherGlobal(p.Proc, manyHigh); out != nil {
			fmt.Println("manyHigh = 2*someLow + 1, gathered on the many subgroup:")
			for i := 0; i < 6; i++ {
				fmt.Printf("  %v\n", out[i*4:(i+1)*4])
			}
		}
	})

	fmt.Printf("\nvirtual makespan: %.6f s over %d processors (%s engine)\n",
		stats.MakespanTime(), len(stats.Procs), mach.Engine().Name())
	// At large -p the per-processor table would drown the output; show the
	// first processors of each subgroup and elide the rest.
	shown := len(stats.Procs)
	if shown > 8 {
		shown = 8
	}
	for _, ps := range stats.Procs[:shown] {
		fmt.Printf("  proc %d: finish %.6f s, busy %.6f s, sent %d msgs\n",
			ps.ID, ps.Finish, ps.Busy, ps.MsgsSent)
	}
	if len(stats.Procs) > shown {
		fmt.Printf("  ... and %d more processors\n", len(stats.Procs)-shown)
	}
}
