// Multiblock: the paper's second motivating use case — "multiblock codes
// containing irregularly structured regular meshes are more naturally
// programmed as interacting tasks". A chain of unequal-width blocks is
// relaxed by Jacobi iterations; each block owns a processor subgroup and
// interface columns travel between subgroup arrays through parent-scope
// section assignments (the Figure 1 structure).
//
// Run with: go run ./examples/multiblock
package main

import (
	"fmt"
	"math"

	"fxpar/internal/apps/multiblock"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func main() {
	cfg := multiblock.Config{
		H: 48, Widths: []int{30, 18, 42}, Iters: 40, Left: 100, Right: 0,
	}
	fmt.Printf("multiblock chain: %d blocks of widths %v, %d Jacobi iterations\n\n",
		len(cfg.Widths), cfg.Widths, cfg.Iters)

	res := multiblock.Run(machine.New(6, sim.Paragon()), cfg, []int{2, 1, 3})
	ref := multiblock.Reference(cfg)

	maxErr := 0.0
	for b, w := range cfg.Widths {
		for i := 0; i < cfg.H; i++ {
			for j := 1; j < w-1; j++ {
				if e := math.Abs(res.Blocks[b][i*w+j] - ref[b][i*w+j]); e > maxErr {
					maxErr = e
				}
			}
		}
	}
	fmt.Printf("virtual makespan: %.4f s on 6 processors (2+1+3 per block)\n", res.Makespan)
	fmt.Printf("max deviation from the equivalent single-mesh solution: %.2e\n\n", maxErr)

	// Temperature profile along the chain's middle row.
	fmt.Println("mid-row temperature profile across the chain:")
	row := cfg.H / 2
	for b, w := range cfg.Widths {
		fmt.Printf("  block %d:", b)
		for j := 1; j < w-1; j += (w - 2) / 6 {
			fmt.Printf(" %6.2f", res.Blocks[b][row*w+j])
		}
		fmt.Println()
	}
	fmt.Println("\nheat diffuses from the hot left boundary through every interface;")
	fmt.Println("the blocks compute concurrently on their own subgroups.")
}
