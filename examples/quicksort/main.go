// Quicksort: the dynamically nested task parallelism of Figure 4. The
// processors of the current group are recursively divided in proportion to
// the pivot partition, each subgroup sorting its side with its own nested
// task regions.
//
// Run with: go run ./examples/quicksort
package main

import (
	"fmt"

	"fxpar/internal/apps/qsort"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func main() {
	const n = 100000
	fmt.Printf("nested task-parallel quicksort of %d keys\n\n", n)
	fmt.Printf("%6s %14s %10s %8s\n", "procs", "makespan (s)", "speedup", "sorted")
	var t1 float64
	for _, procs := range []int{1, 2, 4, 8, 16, 32} {
		res := qsort.Run(machine.New(procs, sim.Paragon()), n, 12345)
		if procs == 1 {
			t1 = res.Makespan
		}
		fmt.Printf("%6d %14.4f %10.2f %8v\n", procs, res.Makespan, t1/res.Makespan, res.Sorted)
	}
}
