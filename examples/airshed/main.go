// Airshed: the multidisciplinary-application pattern of Section 5.2 — a
// mainly-sequential hourly input/output wrapped around a parallel
// simulation. The task version gives input and output their own processor
// subgroups so they overlap the main computation.
//
// Run with: go run ./examples/airshed
package main

import (
	"fmt"

	"fxpar/internal/apps/airshed"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func main() {
	cfg := airshed.Config{
		Layers: 4, Grid: 512, Species: 16,
		Hours: 4, Steps: 3,
		ChemFlops: 220, TransFlops: 25, PreFlops: 10,
	}
	fmt.Printf("Airshed: %d layers x %d grid points x %d species, %d hours\n\n",
		cfg.Layers, cfg.Grid, cfg.Species, cfg.Hours)
	fmt.Printf("%6s %16s %16s %12s\n", "procs", "data-par (s)", "task+data (s)", "improvement")
	for _, procs := range []int{4, 8, 16, 32} {
		dp := airshed.Run(machine.New(procs, sim.Paragon()), cfg, airshed.DataParallel)
		task := airshed.Run(machine.New(procs, sim.Paragon()), cfg, airshed.TaskIO)
		fmt.Printf("%6d %16.3f %16.3f %11.0f%%\n",
			procs, dp.Makespan, task.Makespan,
			(dp.Makespan-task.Makespan)/dp.Makespan*100)
		for h := 0; h < cfg.Hours; h++ {
			if dp.Checksums[h] != task.Checksums[h] {
				fmt.Printf("  !! checksum mismatch at hour %d\n", h)
			}
		}
	}
	fmt.Println("\nseparating I/O into tasks restores scalability once the serial")
	fmt.Println("input/output phases become the bottleneck (Figure 6).")
}
