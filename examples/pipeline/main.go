// Pipeline: FFT-Hist under the three mapping families of Sections 3.2-3.3
// (Figures 2 and 3) — pure data parallelism, a 3-stage pipeline, and
// replicated modules — on the same 12-processor simulated machine, showing
// the throughput/latency trade-off of Figure 5 and verifying that all
// mappings compute identical histograms.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func main() {
	cfg := ffthist.Config{N: 64, Sets: 10, Bins: 32}
	mappings := []ffthist.Mapping{
		ffthist.DataParallel(12),
		ffthist.Pipeline(6, 4, 2),
		{Modules: 2, Stages: []int{6}},
		{Modules: 2, Stages: []int{3, 2, 1}},
	}

	fmt.Printf("FFT-Hist, %dx%d complex, stream of %d data sets, 12 simulated processors\n\n",
		cfg.N, cfg.N, cfg.Sets)
	fmt.Printf("%-40s %12s %12s\n", "mapping", "thr (sets/s)", "latency (s)")

	var ref map[int][]int64
	for _, mp := range mappings {
		res := ffthist.Run(machine.New(12, sim.Paragon()), cfg, mp)
		fmt.Printf("%-40s %12.2f %12.4f\n", mp, res.Stream.Throughput, res.Stream.Latency)
		if ref == nil {
			ref = res.Hists
			continue
		}
		for set, h := range res.Hists {
			for b := range h {
				if h[b] != ref[set][b] {
					fmt.Printf("  !! histogram mismatch at set %d bin %d\n", set, b)
				}
			}
		}
	}
	fmt.Println("\nall mappings computed identical histograms — the task directives")
	fmt.Println("change performance, never semantics (Section 2.2).")
}
