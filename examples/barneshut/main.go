// Barnes-Hut: the tree-structured nested parallelism of Figure 7 and
// Section 5.3. Processors split recursively with pruned partial trees
// (top-k levels replicated, remote branches stubbed); particles that need a
// missing branch travel up parent worklists. The example reports scaling,
// worklist sizes, partial-tree memory, and accuracy against the direct
// O(n^2) sum.
//
// Run with: go run ./examples/barneshut
package main

import (
	"fmt"

	"fxpar/internal/apps/barneshut"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func main() {
	cfg := barneshut.Config{N: 4096, Theta: 1.0, Seed: 7, K: 10}
	fmt.Printf("Barnes-Hut, %d uniform particles, theta=%.1f, k=%d replicated levels\n\n", cfg.N, cfg.Theta, cfg.K)

	// Accuracy check against the exact O(n^2) sum on a smaller instance.
	small := barneshut.Config{N: 512, Theta: 0.5, Seed: 7}
	res := barneshut.Run(machine.New(1, sim.Paragon()), small)
	direct := barneshut.DirectForces(res.Particles)
	maxRel := 0.0
	for i := range direct {
		rel := res.Forces[i].Sub(direct[i]).Norm() / (direct[i].Norm() + 1e-12)
		if rel > maxRel {
			maxRel = rel
		}
	}
	fmt.Printf("accuracy vs direct sum (n=%d, theta=%.1f): max relative error %.3f%%\n\n",
		small.N, small.Theta, maxRel*100)

	fmt.Printf("%6s %14s %10s %14s %18s\n", "procs", "makespan (s)", "speedup", "max worklist", "max partial tree")
	var t1 float64
	for _, procs := range []int{1, 2, 4, 8, 16, 32} {
		r := barneshut.Run(machine.New(procs, sim.Paragon()), cfg)
		if procs == 1 {
			t1 = r.Makespan
		}
		fmt.Printf("%6d %14.4f %10.2f %14d %14d/%d\n",
			procs, r.Makespan, t1/r.Makespan, r.MaxWorklist, r.MaxPartialNodes, 2*cfg.N-1)
	}
	fmt.Println("\nworklists carry only boundary-layer particles up the recursion;")
	fmt.Println("partial trees stay far smaller than the full tree (Section 5.3).")
}
