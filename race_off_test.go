//go:build !race

package fxpar_test

const raceEnabledRoot = false
