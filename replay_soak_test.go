// Replay-vs-resimulate equivalence soak: the skeleton-replay backend's core
// guarantee is that replaying a stored skeleton at its recorded parameters
// reproduces the recorded run bitwise — event stream and makespan — for
// healthy AND chaotic captures, under every execution engine, and across a
// round-trip through the on-disk store. Any divergence means the replay
// backend would silently hand campaigns wrong numbers.
package fxpar_test

import (
	"path/filepath"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/trace"
)

// replaySoakScenario captures one P=64 FFT-Hist pipeline run under eng/fp
// and returns the recorded event stream plus the captured skeleton exactly
// as the replay backend stores it (via a live skeleton.Sink).
func replaySoakScenario(t *testing.T, eng machine.Engine, fp machine.FaultPlan, chaos string) ([]machine.Event, *skeleton.Skeleton) {
	t.Helper()
	cfg := ffthist.Config{N: 64, Sets: 8, Bins: 64}
	mp := ffthist.Mapping{Modules: 2, Stages: []int{16, 8, 8}}
	col := &trace.Collector{}
	sink := skeleton.NewSink(sim.Paragon(), chaos)
	m := machine.New(64, sim.Paragon())
	m.SetEngine(eng)
	m.SetFaults(fp)
	m.SetTracer(trace.Tee(col, sink))
	ffthist.Run(m, cfg, mp)
	sk, err := sink.Skeleton()
	if err != nil {
		t.Fatalf("%s: skeleton: %v", eng.Name(), err)
	}
	return col.Events(), sk
}

// TestReplaySoakP64 drives the full replay path for a healthy and a chaotic
// P=64 scenario under both engine families: capture, store round-trip
// (in-memory and on-disk), identity replay, and a bitwise comparison of the
// re-costed event stream against the recorded one.
func TestReplaySoakP64(t *testing.T) {
	prof, err := fault.ProfileByName("flaky")
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.New(42, prof)

	scenarios := []struct {
		name  string
		fp    machine.FaultPlan
		chaos string
	}{
		{"healthy", nil, ""},
		{"chaos-flaky", plan.Machine(), plan.String()},
	}
	engines := []machine.Engine{machine.Goroutine(), machine.Coop(4)}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			store := skeleton.NewStore(filepath.Join(t.TempDir(), "skel"))
			var baseEvents []machine.Event
			var baseKey string
			for ei, eng := range engines {
				recorded, sk := replaySoakScenario(t, eng, sc.fp, sc.chaos)
				if len(recorded) == 0 {
					t.Fatalf("%s: run recorded no events", eng.Name())
				}

				// Engine independence of the capture itself.
				key, err := sk.Key()
				if err != nil {
					t.Fatalf("%s: key: %v", eng.Name(), err)
				}
				if ei == 0 {
					baseEvents, baseKey = recorded, key
				} else {
					if key != baseKey {
						t.Fatalf("%s: skeleton content key %s differs from %s", eng.Name(), key, baseKey)
					}
					if len(recorded) != len(baseEvents) {
						t.Fatalf("%s: %d recorded events vs %d", eng.Name(), len(recorded), len(baseEvents))
					}
					for i := range recorded {
						if recorded[i] != baseEvents[i] {
							t.Fatalf("%s: recorded event %d diverges:\n got %+v\nwant %+v",
								eng.Name(), i, recorded[i], baseEvents[i])
						}
					}
				}

				// Store round-trip: Put, then read back through a FRESH store
				// over the same directory so the disk path is exercised.
				k := skeleton.StoreKey{App: "ffthist.pipeline", Params: "N=64,Sets=8,Bins=64",
					Mapping: "m=2/16,8,8", P: 64, Chaos: sc.chaos, Cost: sim.Paragon()}
				if err := store.Put(k, sk); err != nil {
					t.Fatalf("%s: store.Put: %v", eng.Name(), err)
				}
				stored, src, ok := skeleton.NewStore(store.Dir()).Get(k)
				if !ok || src != skeleton.SourceDisk {
					t.Fatalf("%s: disk lookup failed (ok %v src %v)", eng.Name(), ok, src)
				}

				// Identity replay of the STORED skeleton must reproduce the
				// recorded run bitwise: makespan and full event stream.
				res, err := stored.RecostEvents(skeleton.Params{})
				if err != nil {
					t.Fatalf("%s: RecostEvents: %v", eng.Name(), err)
				}
				if res.Makespan != sk.Makespan {
					t.Fatalf("%s: replayed makespan %v != recorded %v", eng.Name(), res.Makespan, sk.Makespan)
				}
				// The skeleton keeps compute/send/recv/span structure and
				// derives waits; faults/timeouts/retries are recorded ops.
				// Every replayed event must match its recorded counterpart
				// bitwise in (proc, seq) order.
				recordedSorted := append([]machine.Event(nil), recorded...)
				trace.SortEvents(recordedSorted)
				if len(res.Events) != len(recordedSorted) {
					t.Fatalf("%s: replay produced %d events, recorded %d", eng.Name(), len(res.Events), len(recordedSorted))
				}
				for i := range res.Events {
					if res.Events[i] != recordedSorted[i] {
						t.Fatalf("%s: replayed event %d diverges:\n got %+v\nwant %+v",
							eng.Name(), i, res.Events[i], recordedSorted[i])
					}
				}
			}
		})
	}
}
