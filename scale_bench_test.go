// BenchmarkScaleTelemetry measures what always-on observability costs at
// large P, the regime the scale tier exists for: an FFT-Hist campaign of
// 64-processor data-parallel modules is replicated up to P=65536, run once
// untraced and once under the full scale telemetry stack — deterministic
// 1-in-64 event sampling, sharded streaming sinks folding into sketches, a
// sparse comm matrix, and the self-accounting overhead budget metering all
// of it. The point of the exercise is the per-processor telemetry cost
// column: it must stay flat as P grows 64x, which is what "scale-ready"
// means for the telemetry layer.
//
// The numbers land in BENCH_scale.json. Virtual-time fields (makespan,
// kept/dropped event counts, latency quantiles) are deterministic and CI
// exact-diffs them; host-time fields (seconds, overhead, per-proc cost) are
// skipped. CI regenerates up to FXPAR_SCALE_MAX=16384; the committed
// P=65536 point comes from a soak run (see EXPERIMENTS.md) and is excluded
// from the CI diff by path.
package fxpar_test

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/metrics"
	"fxpar/internal/sim"
	"fxpar/internal/trace"
)

// Scale workload shape: each module is a 64-processor data-parallel FFT-Hist
// worker chewing through two data sets, so total work scales linearly with P
// and the per-processor event rate is constant — any growth in per-proc
// telemetry cost is the telemetry's fault, not the workload's.
const (
	scaleModuleProcs   = 64
	scaleSetsPerModule = 2
	scaleN             = 64
	scaleBins          = 64
	scaleSampleSpec    = "1/64:1"
	scaleCoopWorkers   = 8
)

// scaleProcs are the machine sizes of the sweep; FXPAR_SCALE_MAX caps the
// largest point (CI sets 16384 so the job stays fast; the soak covers 65536).
var scaleProcs = []int{1024, 4096, 16384, 65536}

type scalePoint struct {
	// Workload shape at this point.
	Procs   int
	Modules int
	Sets    int
	// Deterministic virtual-time results: identical on every host, engine
	// and -j, exact-diffed by CI.
	Makespan      float64
	KeptEvents    int64
	DroppedEvents int64
	LatencyP50    float64
	LatencyP99    float64
	// Host-time results (skipped in CI diffs): seconds per run untraced and
	// under the sampled scale telemetry stack, and the ratio. The telemetry
	// stack is cheap enough that the wall-clock difference is noise, so the
	// per-processor cost — the flatness deliverable — comes from the overhead
	// budget's own self-accounted sink estimate, not the difference.
	NilSec             float64
	SampledSec         float64
	OverheadX          float64
	PerProcTelemetryUS float64
	SinkSharePct       float64
}

type scaleBenchFile struct {
	ModuleProcs   int
	SetsPerModule int
	N             int
	Bins          int
	SampleSpec    string
	CoopWorkers   int
	Points        map[string]scalePoint
}

// scaleMax reads the FXPAR_SCALE_MAX cap (largest P to measure).
func scaleMax() int {
	if v := os.Getenv("FXPAR_SCALE_MAX"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return scaleProcs[len(scaleProcs)-1]
}

func scaleConfig(procs int) (ffthist.Config, ffthist.Mapping) {
	modules := procs / scaleModuleProcs
	cfg := ffthist.Config{
		N: scaleN, Sets: scaleSetsPerModule * modules, Bins: scaleBins,
		SketchStats: true,
	}
	mp := ffthist.Mapping{Modules: modules, Stages: []int{scaleModuleProcs}}
	return cfg, mp
}

// scaleRunNil runs the workload with telemetry off (the baseline cost).
func scaleRunNil(procs int) ffthist.Result {
	cfg, mp := scaleConfig(procs)
	m := machine.New(procs, sim.Paragon())
	m.SetEngine(machine.Coop(scaleCoopWorkers))
	return ffthist.Run(m, cfg, mp)
}

// scaleRunSampled runs the workload under the scale telemetry stack and
// returns the app result plus the sampler and budget snapshots.
func scaleRunSampled(procs int) (ffthist.Result, trace.SampleSnapshot, trace.BudgetReport) {
	cfg, mp := scaleConfig(procs)
	scfg, err := trace.ParseSampleSpec(scaleSampleSpec)
	if err != nil {
		panic(err)
	}
	sampler := trace.NewSampler(procs, scfg)
	budget := trace.NewOverheadBudget()
	sink := metrics.NewStreamSink(procs)
	util := trace.NewUtilSink(procs)
	comm := trace.NewCommMatrix(procs)
	m := machine.New(procs, sim.Paragon())
	m.SetEngine(machine.Coop(scaleCoopWorkers))
	m.SetTracer(trace.Tee(
		budget.Meter("metrics", sink),
		budget.Meter("util", util),
		budget.Meter("comm", comm),
	))
	m.SetSampler(sampler)
	budget.SetSampler(sampler)
	budget.Start()
	res := ffthist.Run(m, cfg, mp)
	// Snapshot production is part of the telemetry cost, like obs_bench.
	_ = sink.Snapshot()
	_ = metrics.UtilDistribution(util.Snapshot())
	_ = trace.TopCommEdges(comm.Snapshot(), 64)
	budget.Finish()
	return res, sampler.Snapshot(), budget.Report()
}

func BenchmarkScaleTelemetry(b *testing.B) {
	maxP := scaleMax()
	out := scaleBenchFile{
		ModuleProcs:   scaleModuleProcs,
		SetsPerModule: scaleSetsPerModule,
		N:             scaleN,
		Bins:          scaleBins,
		SampleSpec:    scaleSampleSpec,
		CoopWorkers:   scaleCoopWorkers,
		Points:        map[string]scalePoint{},
	}
	for _, procs := range scaleProcs {
		if procs > maxP {
			b.Logf("skipping P=%d (FXPAR_SCALE_MAX=%d)", procs, maxP)
			continue
		}
		cfg, mp := scaleConfig(procs)
		pt := scalePoint{Procs: procs, Modules: mp.Modules, Sets: cfg.Sets}

		start := time.Now()
		nilRes := scaleRunNil(procs)
		pt.NilSec = time.Since(start).Seconds()

		res, samp, rep := scaleRunSampled(procs)
		pt.SampledSec = float64(rep.WallNS) / 1e9

		if res.Makespan != nilRes.Makespan {
			b.Fatalf("P=%d: sampled makespan %.9g != untraced %.9g — telemetry perturbed the simulation",
				procs, res.Makespan, nilRes.Makespan)
		}
		pt.Makespan = res.Makespan
		pt.KeptEvents = samp.Kept
		pt.DroppedEvents = samp.Dropped
		pt.LatencyP50 = res.Stream.LatencyP50
		pt.LatencyP99 = res.Stream.LatencyP99
		if pt.NilSec > 0 {
			pt.OverheadX = pt.SampledSec / pt.NilSec
		}
		pt.PerProcTelemetryUS = float64(rep.TotalEstNS) / 1e3 / float64(procs)
		pt.SinkSharePct = rep.SinkSharePct

		out.Points[fmt.Sprintf("P%d", procs)] = pt
		b.Logf("P=%d: nil %.3fs sampled %.3fs (%.2fx, %.3f us/proc)  kept %d dropped %d",
			procs, pt.NilSec, pt.SampledSec, pt.OverheadX, pt.PerProcTelemetryUS,
			samp.Kept, samp.Dropped)
		b.ReportMetric(pt.OverheadX, fmt.Sprintf("P%d-x", procs))
	}

	f, err := os.Create("BENCH_scale.json")
	if err != nil {
		b.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}
