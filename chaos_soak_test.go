// Chaos soak: the headline guarantee of the fault layer is that a chaotic
// run always terminates — with output identical to the healthy run under
// non-lethal profiles, or with a typed error cascade rooted at an injected
// death under lethal ones — and never hangs. This soak drives a P=256
// FFT-Hist pipeline through every built-in fault profile under a host-time
// watchdog, so a regression that reintroduces a hang (a receiver that never
// learns its sender died, a collective that waits forever on a dead member)
// fails the test instead of wedging CI.
package fxpar_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// chaosSoakRun executes one FFT-Hist run under the plan, converting a
// processor-failure panic into its *machine.RunError. Any other panic value
// is re-raised: only typed failures are acceptable.
func chaosSoakRun(procs int, cfg ffthist.Config, mp ffthist.Mapping, pl *fault.Plan) (res ffthist.Result, runErr *machine.RunError) {
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(*machine.RunError)
			if !ok {
				panic(r)
			}
			runErr = re
		}
	}()
	m := machine.New(procs, sim.Paragon())
	m.SetFaults(pl.Machine())
	res = ffthist.Run(m, cfg, mp)
	return res, nil
}

// TestChaosSoakP256AllProfiles: for every profile and several seeds, the run
// must finish within a generous host watchdog and either reproduce the
// healthy output exactly or fail with a RunError whose root cause is a
// planned processor death.
func TestChaosSoakP256AllProfiles(t *testing.T) {
	const procs = 256
	cfg := ffthist.Config{N: 64, Sets: 8, Bins: 64}
	if testing.Short() {
		cfg.Sets = 4
	}
	mp := ffthist.Mapping{Modules: 2, Stages: []int{64, 32, 32}}
	healthy, herr := chaosSoakRun(procs, cfg, mp, nil)
	if herr != nil {
		t.Fatalf("healthy run failed: %v", herr)
	}

	seeds := []uint64{1, 7, 42}
	for _, prof := range fault.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				pl := fault.New(seed, prof)
				type outcome struct {
					res ffthist.Result
					err *machine.RunError
				}
				done := make(chan outcome, 1)
				go func() {
					res, err := chaosSoakRun(procs, cfg, mp, pl)
					done <- outcome{res, err}
				}()
				var out outcome
				select {
				case out = <-done:
				case <-time.After(2 * time.Minute):
					// The goroutine is leaked on purpose: the test's job is
					// to report the hang, not to unwedge it.
					t.Fatalf("plan %s: run hung past the watchdog — chaos must never hang", pl)
				}

				if out.err != nil {
					if !prof.Lethal() {
						t.Fatalf("plan %s: non-lethal profile failed the run: %v", pl, out.err)
					}
					var death *machine.ProcDeathError
					if !errors.As(out.err, &death) {
						t.Fatalf("plan %s: failure has no ProcDeathError root: %v", pl, out.err)
					}
					victims := pl.Victims(procs)
					if _, planned := victims[death.Proc]; !planned {
						t.Fatalf("plan %s: processor %d died but the plan kills %v", pl, death.Proc, victims)
					}
					continue
				}
				if prof.Lethal() && len(pl.Victims(procs)) > 0 {
					// Victims whose death time lies beyond their last operation
					// legitimately survive; completing correctly is fine.
					t.Logf("plan %s: victims %v outlived the run", pl, pl.Victims(procs))
				}
				if !reflect.DeepEqual(out.res.Hists, healthy.Hists) {
					t.Fatalf("plan %s: run completed with corrupted output", pl)
				}
			}
		})
	}
}
