// Integration tests exercising cross-package composition: heterogeneous
// applications co-scheduled in one SPMD program — the "single programming
// and compilation framework" advantage Section 6 claims over coordination-
// language approaches, where no such composition is expressible.
package fxpar_test

import (
	"sync"
	"testing"

	"fxpar/internal/apps/barneshut"
	"fxpar/internal/apps/qsort"
	"fxpar/internal/dist"
	"fxpar/internal/fft"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/hpf"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/trace"
)

// TestCoScheduledApplications runs a quicksort and an FFT workload on
// disjoint subgroups of one machine, in one program, and verifies both
// complete correctly and overlap in virtual time.
func TestCoScheduledApplications(t *testing.T) {
	m := machine.New(8, sim.Paragon())
	var mu sync.Mutex
	var sorted bool
	var spectrumOK bool
	stats := fx.Run(m, func(p *fx.Proc) {
		fx.Sections(p,
			fx.Section{Name: "sorting", Procs: 4, Body: func() {
				g := p.Group()
				a := dist.New[int64](p.Proc, dist.MustLayout(g, []int{5000},
					[]dist.Axis{dist.BlockAxis()}, []int{4}))
				a.FillFunc(func(idx []int) int64 { return int64((idx[0] * 2654435761) % 99991) })
				qsort.Sort(p, a)
				ok := qsort.IsSorted(p, a)
				if p.VP() == 0 {
					mu.Lock()
					sorted = ok
					mu.Unlock()
				}
			}},
			fx.Section{Name: "signal", Procs: 4, Body: func() {
				g := p.Group()
				a := dist.New[complex128](p.Proc, dist.RowBlock2D(g, 32, 32))
				a.FillFunc(func(idx []int) complex128 { return complex(1, 0) }) // constant signal
				if len(a.Local()) > 0 {
					p.Compute(fft.Rows(a.Local(), 32))
				}
				// Constant rows: all energy in bin 0 of each row.
				ok := true
				for r := 0; r < a.NumLocalRows(); r++ {
					row := a.LocalRow(r)
					if real(row[0]) != 32 {
						ok = false
					}
					for j := 1; j < 32; j++ {
						if row[j] != 0 {
							ok = false
						}
					}
				}
				v := fx.AllReduce(p, boolToInt(ok), func(a, b int) int { return a * b })
				if p.VP() == 0 {
					mu.Lock()
					spectrumOK = v == 1
					mu.Unlock()
				}
			}},
		)
	})
	if !sorted {
		t.Error("co-scheduled sort failed")
	}
	if !spectrumOK {
		t.Error("co-scheduled FFT failed")
	}
	if stats.MakespanTime() <= 0 {
		t.Error("no virtual time elapsed")
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestDynamicProcessorReassignment reassigns processors between phases —
// the "dynamic load management by reassigning processors to different tasks
// within a program" Section 6 notes coordination languages cannot do.
func TestDynamicProcessorReassignment(t *testing.T) {
	m := machine.New(6, sim.Paragon())
	var mu sync.Mutex
	phase1 := map[string]int{}
	phase2 := map[string]int{}
	fx.Run(m, func(p *fx.Proc) {
		// Phase 1: 5 processors on task A, 1 on task B.
		fx.Sections(p,
			fx.Section{Name: "A", Procs: 5, Body: func() {
				mu.Lock()
				phase1["A"] = p.NumberOfProcessors()
				mu.Unlock()
			}},
			fx.Section{Name: "B", Procs: 1, Body: func() {
				mu.Lock()
				phase1["B"] = p.NumberOfProcessors()
				mu.Unlock()
			}},
		)
		// Phase 2: rebalanced 2/4 after the load shifted.
		fx.Sections(p,
			fx.Section{Name: "A", Procs: 2, Body: func() {
				mu.Lock()
				phase2["A"] = p.NumberOfProcessors()
				mu.Unlock()
			}},
			fx.Section{Name: "B", Procs: 4, Body: func() {
				mu.Lock()
				phase2["B"] = p.NumberOfProcessors()
				mu.Unlock()
			}},
		)
	})
	if phase1["A"] != 5 || phase1["B"] != 1 || phase2["A"] != 2 || phase2["B"] != 4 {
		t.Errorf("phase1 %v phase2 %v", phase1, phase2)
	}
}

// TestTracedNestedApplication runs Barnes-Hut under a tracer and sanity
// checks the collected timeline spans the run and contains compute from
// several processors.
func TestTracedNestedApplication(t *testing.T) {
	col := &trace.Collector{}
	m := machine.New(4, sim.Paragon())
	m.SetTracer(col)
	res := barneshut.Run(m, barneshut.Config{N: 256, Theta: 0.8, Seed: 1, K: 6})
	if col.Len() == 0 {
		t.Fatal("no events recorded")
	}
	_, end := col.Span()
	if end < res.Makespan*0.99 {
		t.Errorf("trace span %g < makespan %g", end, res.Makespan)
	}
	busy := col.BusyByKind(4)
	computeRows := 0
	for _, v := range busy[machine.EvCompute] {
		if v > 0 {
			computeRows++
		}
	}
	if computeRows != 4 {
		t.Errorf("compute on %d of 4 processors", computeRows)
	}
}

// TestHPFAndFxInterop mixes the two surfaces in one program: an hpf.Region
// whose task bodies use Fx partitions inside.
func TestHPFAndFxInterop(t *testing.T) {
	m := machine.New(8, sim.Paragon())
	var mu sync.Mutex
	innerNP := map[int]int{}
	fx.Run(m, func(p *fx.Proc) {
		hpf.Region(p, []hpf.Task{
			{Lo: 0, Hi: 4, Body: func() {
				part := p.Partition(group.Sub("x", 2), group.Sub("y", 2))
				p.TaskRegion(part, func(r *fx.Region) {
					r.On("x", func() {
						mu.Lock()
						innerNP[p.ID()] = p.NumberOfProcessors()
						mu.Unlock()
					})
				})
			}},
			{Lo: 4, Hi: 8, Body: func() {
				mu.Lock()
				innerNP[p.ID()] = -p.NumberOfProcessors()
				mu.Unlock()
			}},
		})
	})
	for id, np := range innerNP {
		if id < 2 && np != 2 {
			t.Errorf("proc %d inner NP = %d", id, np)
		}
		if id >= 4 && np != -4 {
			t.Errorf("proc %d outer NP = %d", id, np)
		}
	}
}
