module fxpar

go 1.22
